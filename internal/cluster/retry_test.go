package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kard/internal/cluster"
	"kard/internal/cluster/netfault"
	"kard/internal/faultinject"
	"kard/internal/harness"
	"kard/internal/obs"
)

// checkGoroutines waits for the goroutine count to come back down to the
// pre-test level; retry loops, heartbeat goroutines, and the self-fence
// path must not leak (same idiom as internal/service's drain checks).
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Errorf("goroutine leak: %d before, %d after\n%s", before, n, buf[:runtime.Stack(buf, true)])
}

// flaky wraps a coordinator handler and serves `remaining` injected 500s
// on one path before letting requests through.
type flaky struct {
	inner     http.Handler
	path      string
	remaining atomic.Int64
	seen      atomic.Int64
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == f.path {
		f.seen.Add(1)
		if f.remaining.Add(-1) >= 0 {
			http.Error(w, "injected transient failure", http.StatusInternalServerError)
			return
		}
	}
	f.inner.ServeHTTP(w, r)
}

func fastRetryOpts() cluster.ClientOptions {
	return cluster.ClientOptions{
		BackoffBase: time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
		MaxAttempts: 3,
		MaxElapsed:  10 * time.Second,
	}
}

// TestClientRetriesTransient500: a lease that hits transient 500s is
// retried under the same rid until it succeeds, and the retry counter
// advances.
func TestClientRetriesTransient500(t *testing.T) {
	coord, err := cluster.New(cluster.Config{Dir: t.TempDir()}, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	f := &flaky{inner: coord.Handler(), path: "/cluster/lease"}
	f.remaining.Store(2)
	ts := httptest.NewServer(f)
	defer ts.Close()

	ctx := context.Background()
	cl, err := cluster.DialWith(ctx, ts.URL, "retrier", fastRetryOpts())
	if err != nil {
		t.Fatal(err)
	}
	retries0 := obs.Std.ClusterRetryLease.Value()
	l, err := cl.Lease(ctx)
	if err != nil || l.State != cluster.LeaseCell {
		t.Fatalf("lease after transient 500s: %+v, %v", l, err)
	}
	if got := f.seen.Load(); got != 3 {
		t.Fatalf("coordinator saw %d lease attempts, want 3 (2 failed + 1 ok)", got)
	}
	if d := obs.Std.ClusterRetryLease.Value() - retries0; d != 2 {
		t.Fatalf("retry counter grew by %d, want 2", d)
	}
	// Exactly one cell must be assigned: the retried rid leased once.
	if st := coord.Stats(); st.Inflight != 1 {
		t.Fatalf("inflight = %d after retried lease, want 1", st.Inflight)
	}
}

// TestClientRetryBudget: when the outage outlasts MaxAttempts the client
// stops absorbing it and surfaces ErrRetryBudget.
func TestClientRetryBudget(t *testing.T) {
	coord, err := cluster.New(cluster.Config{Dir: t.TempDir()}, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	f := &flaky{inner: coord.Handler(), path: "/cluster/lease"}
	f.remaining.Store(1 << 30)
	ts := httptest.NewServer(f)
	defer ts.Close()

	ctx := context.Background()
	cl, err := cluster.DialWith(ctx, ts.URL, "doomed", fastRetryOpts())
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Lease(ctx)
	if !errors.Is(err, cluster.ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
	if got := f.seen.Load(); got != 3 {
		t.Fatalf("coordinator saw %d lease attempts, want MaxAttempts=3", got)
	}
}

// TestClientTerminalNotRetried: protocol answers are not outages — a 410
// surfaces as ErrGone on the first attempt, no retries.
func TestClientTerminalNotRetried(t *testing.T) {
	var leaseCalls atomic.Int64
	coord, err := cluster.New(cluster.Config{Dir: t.TempDir()}, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	h := coord.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/cluster/lease" {
			leaseCalls.Add(1)
			http.Error(w, "unknown worker", http.StatusGone)
			return
		}
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()

	ctx := context.Background()
	cl, err := cluster.DialWith(ctx, ts.URL, "gone", fastRetryOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Lease(ctx); !errors.Is(err, cluster.ErrGone) {
		t.Fatalf("err = %v, want ErrGone", err)
	}
	if got := leaseCalls.Load(); got != 1 {
		t.Fatalf("410 was retried: %d attempts, want 1", got)
	}
}

// TestCoordinatorRidDedup: a duplicated join/lease/complete (same rid) is
// answered from the dedup window with the original answer instead of
// re-executing.
func TestCoordinatorRidDedup(t *testing.T) {
	coord, _ := newCoordinator(t, cluster.Config{HeartbeatTimeout: time.Minute}, testSpecs())
	d0 := coord.Stats().DedupHits

	id1, err := coord.Join("dup", "rid-j")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := coord.Join("dup", "rid-j")
	if err != nil || id2 != id1 {
		t.Fatalf("retried join minted a ghost: %q vs %q (err %v)", id2, id1, err)
	}

	l1, err := coord.Lease(id1, "rid-l")
	if err != nil || l1.State != cluster.LeaseCell {
		t.Fatalf("lease: %+v, %v", l1, err)
	}
	l2, err := coord.Lease(id1, "rid-l")
	if err != nil || l2.Cell != l1.Cell {
		t.Fatalf("retried lease strayed: cell %d vs %d (err %v)", l2.Cell, l1.Cell, err)
	}

	res, err := harness.Run(l1.Spec.Options)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Complete(id1, l1.Cell, "rid-c", res, "", false); err != nil {
		t.Fatal(err)
	}
	if err := coord.Complete(id1, l1.Cell, "rid-c", res, "", false); err != nil {
		t.Fatalf("retried complete: %v", err)
	}

	st := coord.Stats()
	if st.Done != 1 || st.Inflight != 0 {
		t.Fatalf("done=%d inflight=%d after dedup'd retries, want 1 and 0", st.Done, st.Inflight)
	}
	if got := st.DedupHits - d0; got != 3 {
		t.Fatalf("dedup hits grew by %d, want 3 (join+lease+complete)", got)
	}
	// A fresh rid leases fresh work.
	l3, err := coord.Lease(id1, "rid-l2")
	if err != nil || l3.State != cluster.LeaseCell || l3.Cell == l1.Cell {
		t.Fatalf("fresh lease after dedup: %+v, %v", l3, err)
	}
}

// TestRidDedupSurvivesRestart: the journal carries completion rids and
// assignment rids across a coordinator restart — a complete retried
// across the crash is absorbed by the replayed window, a lease retried
// across it re-leases exactly the journaled cell, and the worker keeps
// its identity through the rejoin grace.
func TestRidDedupSurvivesRestart(t *testing.T) {
	specs := testSpecs()
	dir := t.TempDir()

	c1, err := cluster.New(cluster.Config{Dir: dir}, specs)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c1.Join("survivor", "rid-join")
	if err != nil {
		t.Fatal(err)
	}
	lA, err := c1.Lease(w, "rid-a")
	if err != nil || lA.State != cluster.LeaseCell {
		t.Fatalf("lease A: %+v, %v", lA, err)
	}
	res, err := harness.Run(lA.Spec.Options)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Complete(w, lA.Cell, "rid-c", res, "", false); err != nil {
		t.Fatal(err)
	}
	// Lease B's response is "lost": the worker will retry rid-b after the
	// restart.
	lB, err := c1.Lease(w, "rid-b")
	if err != nil || lB.State != cluster.LeaseCell {
		t.Fatalf("lease B: %+v, %v", lB, err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := cluster.New(cluster.Config{Dir: dir, HeartbeatTimeout: time.Minute}, specs)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Close()

	// The retried complete lands in the replayed dedup window.
	if err := c2.Complete(w, lA.Cell, "rid-c", res, "", false); err != nil {
		t.Fatalf("complete retried across restart: %v", err)
	}
	if got := c2.Stats().DedupHits; got != 1 {
		t.Fatalf("dedup hits = %d after replayed-window hit, want 1", got)
	}

	// The retried lease re-leases exactly the cell the dead incarnation
	// answered rid-b with (requeued by the restart), under the old ID.
	lB2, err := c2.Lease(w, "rid-b")
	if err != nil {
		t.Fatalf("lease retried across restart: %v", err)
	}
	if lB2.State != cluster.LeaseCell || lB2.Cell != lB.Cell {
		t.Fatalf("retried lease got %+v, want cell %d again", lB2, lB.Cell)
	}
	if got := c2.Stats().Rejoined; got != 1 {
		t.Fatalf("rejoined = %d, want 1 (first contact completes the grace rejoin)", got)
	}
}

// TestWorkerSelfFence is the heartbeat-escalation unit test: when
// heartbeats fail persistently the worker must not log-and-ignore forever
// — after FenceAfter consecutive failures it self-fences, rejoins, and
// the matrix still finishes with byte-identical verdicts. Also a leak
// check: the retry loops and the heartbeat goroutine must wind down.
func TestWorkerSelfFence(t *testing.T) {
	specs := testSpecs()
	ref := canonical(t, harness.RunMatrix(2, specs))

	coord, err := cluster.New(cluster.Config{
		Dir:              t.TempDir(),
		HeartbeatTimeout: 2 * time.Second,
		Logf:             t.Logf,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	var failHB atomic.Bool
	h := coord.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failHB.Load() && r.URL.Path == "/cluster/heartbeat" {
			http.Error(w, "injected heartbeat blackhole", http.StatusInternalServerError)
			return
		}
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()

	store, err := harness.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tr := &http.Transport{}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cl, err := cluster.DialWith(ctx, ts.URL, "fencer", cluster.ClientOptions{
		Transport:   tr,
		BackoffBase: 2 * time.Millisecond,
		MaxElapsed:  time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	fences0 := obs.Std.ClusterSelfFences.Value()
	done := make(chan error, 1)
	go func() {
		done <- cluster.RunWorker(ctx, cl, cluster.WorkerOptions{
			Store:          store,
			HeartbeatEvery: 20 * time.Millisecond,
			FenceAfter:     2,
			OnCell:         func(int, harness.Spec) { time.Sleep(60 * time.Millisecond) },
		})
	}()

	failHB.Store(true)
	fenceDeadline := time.Now().Add(15 * time.Second)
	for obs.Std.ClusterSelfFences.Value() == fences0 {
		if time.Now().After(fenceDeadline) {
			t.Fatal("worker never self-fenced under persistent heartbeat failures")
		}
		time.Sleep(5 * time.Millisecond)
	}
	failHB.Store(false)

	if err := coord.Wait(ctx); err != nil {
		t.Fatalf("matrix did not finish after self-fence: %v (stats %+v)", err, coord.Stats())
	}
	if err := <-done; err != nil {
		t.Fatalf("worker exited non-nil after self-fence: %v", err)
	}
	if got := canonical(t, coord.Results()); got != ref {
		t.Fatalf("verdicts differ after self-fence churn:\ncluster:\n%s\nsingle:\n%s", got, ref)
	}
	if n := len(coord.Stats().Workers); n < 2 {
		t.Fatalf("stats show %d worker identities, want >= 2 (fence must rejoin)", n)
	}
	tr.CloseIdleConnections()
	checkGoroutines(t, before)
}

// TestRunWorkerBudgetExitNoLeak: a worker whose coordinator vanishes for
// good exhausts its retry budget, returns ErrRetryBudget, and leaves no
// goroutine behind (the heartbeat loop is joined on exit).
func TestRunWorkerBudgetExitNoLeak(t *testing.T) {
	coord, err := cluster.New(cluster.Config{Dir: t.TempDir()}, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ts := httptest.NewServer(coord.Handler())

	tr := &http.Transport{}
	opts := fastRetryOpts()
	opts.Transport = tr
	ctx := context.Background()
	cl, err := cluster.DialWith(ctx, ts.URL, "stranded", opts)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ts.Close() // the coordinator is gone and never comes back

	err = cluster.RunWorker(ctx, cl, cluster.WorkerOptions{
		HeartbeatEvery: 10 * time.Millisecond,
	})
	if !errors.Is(err, cluster.ErrRetryBudget) {
		t.Fatalf("RunWorker = %v, want ErrRetryBudget", err)
	}
	tr.CloseIdleConnections()
	checkGoroutines(t, before)
}

// TestClusterChaosTransport is the in-process seeded chaos soak: two
// workers run the whole matrix behind netfault transports injecting the
// default net plan (drops, delays, duplicates, lost responses, partition
// bursts), and the verdicts must still be byte-identical to a fault-free
// single-process run.
func TestClusterChaosTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	specs := testSpecs()
	ref := canonical(t, harness.RunMatrix(2, specs))

	coord, ts := newCoordinator(t, cluster.Config{HeartbeatTimeout: 2 * time.Second}, specs)
	store, err := harness.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	trs := make([]*netfault.Transport, 2)
	errs := make([]error, 2)
	for i := range trs {
		trs[i] = netfault.New(nil, int64(1000+i), faultinject.DefaultNetPlan())
		cl, err := cluster.DialWith(ctx, ts.URL, fmt.Sprintf("chaos-%d", i), cluster.ClientOptions{
			Transport:   trs[i],
			BackoffBase: 5 * time.Millisecond,
			BackoffCap:  100 * time.Millisecond,
			MaxAttempts: 20,
			MaxElapsed:  time.Minute,
		})
		if err != nil {
			t.Fatalf("dial through chaos transport: %v", err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = cluster.RunWorker(ctx, cl, cluster.WorkerOptions{
				Store:          store,
				HeartbeatEvery: 100 * time.Millisecond,
				FenceAfter:     20,
			})
		}(i)
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatalf("matrix did not survive the chaos plan: %v (stats %+v)", err, coord.Stats())
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("chaos worker %d: %v", i, err)
		}
	}

	if got := canonical(t, coord.Results()); got != ref {
		t.Fatalf("chaos verdicts differ from fault-free run:\nchaos:\n%s\nclean:\n%s", got, ref)
	}
	var injected uint64
	for _, tr := range trs {
		injected += tr.Stats().Injected
	}
	if injected == 0 {
		t.Fatal("chaos run injected zero faults — the soak proved nothing")
	}
	t.Logf("chaos soak: %d faults injected, stats %+v", injected, coord.Stats())
}
