package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"kard/internal/cluster"
	"kard/internal/cluster/netfault"
	"kard/internal/faultinject"
	"kard/internal/obs"
	"kard/internal/trace"
)

// chromeEvent is the subset of the Chrome trace-event shape the
// propagation assertions need.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// strArg returns the named arg when it is a string (span and parent IDs
// are hex strings in the export).
func (e chromeEvent) strArg(name string) (string, bool) {
	s, ok := e.Args[name].(string)
	return s, ok
}

func exportEvents(t *testing.T, tr *trace.Tracer) []chromeEvent {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	return doc.TraceEvents
}

func countEvents(evs []chromeEvent, name, ph string, pid int) int {
	n := 0
	for _, e := range evs {
		if e.Name == name && e.Ph == ph && e.Pid == pid {
			n++
		}
	}
	return n
}

// TestTracePropagationRetriesAndDups: the trace context injected by the
// client survives both transient-500 retries and network-duplicated
// deliveries. The client opens ONE span per logical RPC (retries are
// instants inside it), the coordinator opens ONE server span per
// executed RPC stitched to the client span, and a duplicated delivery
// lands in the dedup window as an rpc.*.dup instant — never a second
// server span.
func TestTracePropagationRetriesAndDups(t *testing.T) {
	tr := trace.NewTracer(42, "cluster-trace-test", 0)
	coord, err := cluster.New(cluster.Config{Dir: t.TempDir(), Trace: tr}, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	f := &flaky{inner: coord.Handler(), path: "/cluster/lease"}
	f.remaining.Store(2)
	ts := httptest.NewServer(f)
	defer ts.Close()

	ctx := context.Background()
	propagated0 := obs.Std.TraceRPCPropagated.Value()

	// Client 1: two injected 500s on lease, then success. One logical
	// lease RPC → one client span, two retry instants, one server span.
	o1 := fastRetryOpts()
	o1.Trace = tr.Track(4, 1, "worker-client-retry", 0)
	cl1, err := cluster.DialWith(ctx, ts.URL, "retry-client", o1)
	if err != nil {
		t.Fatal(err)
	}
	if l, err := cl1.Lease(ctx); err != nil || l.State != cluster.LeaseCell {
		t.Fatalf("lease after transient 500s: %+v, %v", l, err)
	}

	// Client 2: the network duplicates EVERY request (join and lease
	// delivered twice each). The second delivery carries the same rid
	// and the same injected trace context, so the coordinator answers it
	// from the dedup window.
	o2 := fastRetryOpts()
	o2.Transport = netfault.New(http.DefaultTransport, 7, faultinject.Plan{
		Sites: map[faultinject.Site]faultinject.Rule{
			faultinject.SiteNetReqDup: {Every: 1, Transient: true},
		},
	})
	o2.Trace = tr.Track(4, 2, "worker-client-dup", 0)
	cl2, err := cluster.DialWith(ctx, ts.URL, "dup-client", o2)
	if err != nil {
		t.Fatal(err)
	}
	if l, err := cl2.Lease(ctx); err != nil || l.State != cluster.LeaseCell {
		t.Fatalf("lease under request duplication: %+v, %v", l, err)
	}

	evs := exportEvents(t, tr)

	// Coordinator (pid 3): exactly one server span per executed RPC —
	// two joins, two leases — despite retries and duplications.
	if got := countEvents(evs, "rpc.join", "B", 3); got != 2 {
		t.Errorf("coordinator opened %d rpc.join spans, want 2", got)
	}
	if got := countEvents(evs, "rpc.lease", "B", 3); got != 2 {
		t.Errorf("coordinator opened %d rpc.lease spans, want 2", got)
	}
	// The duplicated deliveries surface as dedup instants, not spans.
	if got := countEvents(evs, "rpc.join.dup", "i", 3); got != 1 {
		t.Errorf("coordinator recorded %d rpc.join.dup instants, want 1", got)
	}
	if got := countEvents(evs, "rpc.lease.dup", "i", 3); got != 1 {
		t.Errorf("coordinator recorded %d rpc.lease.dup instants, want 1", got)
	}

	// Client 1 (pid 4 tid 1): one lease span wrapping two retry instants.
	if got := countEvents(evs, "rpc.retry", "i", 4); got != 2 {
		t.Errorf("client recorded %d rpc.retry instants, want 2", got)
	}
	for _, tid := range []int{1, 2} {
		spans := 0
		for _, e := range evs {
			if e.Pid == 4 && e.Tid == tid && e.Name == "rpc.lease" && e.Ph == "B" {
				spans++
			}
		}
		if spans != 1 {
			t.Errorf("client tid %d opened %d rpc.lease spans, want 1", tid, spans)
		}
	}

	// Stitching: every coordinator join/lease span carries a parent that
	// is a span the clients actually minted.
	clientSpans := map[string]bool{}
	for _, e := range evs {
		if e.Pid == 4 && e.Ph == "B" {
			if sp, ok := e.strArg("span"); ok {
				clientSpans[sp] = true
			}
		}
	}
	stitched := 0
	for _, e := range evs {
		if e.Pid != 3 || e.Ph != "B" || (e.Name != "rpc.join" && e.Name != "rpc.lease") {
			continue
		}
		parent, ok := e.strArg("parent")
		if !ok {
			t.Errorf("coordinator %s span has no propagated parent", e.Name)
			continue
		}
		if !clientSpans[parent] {
			t.Errorf("coordinator %s span parent %s is not a client span", e.Name, parent)
			continue
		}
		stitched++
	}
	if stitched != 4 {
		t.Errorf("stitched %d server spans to client spans, want 4", stitched)
	}

	if d := obs.Std.TraceRPCPropagated.Value() - propagated0; d < 4 {
		t.Errorf("kard_trace_rpc_propagated_total grew by %d, want >= 4", d)
	}
}
