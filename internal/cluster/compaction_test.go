package cluster_test

import (
	"path/filepath"
	"testing"

	"kard/internal/cluster"
	"kard/internal/harness"
	"kard/internal/service/journal"
)

// TestClusterCompactionEquivalence drives a coordinator whose assignment
// WAL compacts every few appends through a full matrix (with a restart
// in the middle), and checks three things: the verdicts are identical to
// a single-process run, the journal on disk carries a snapshot
// generation, and a fresh replay of snapshot + WAL restores every
// settled cell without recomputation.
func TestClusterCompactionEquivalence(t *testing.T) {
	specs := testSpecs()
	ref := canonical(t, harness.RunMatrix(2, specs))
	dir := t.TempDir()
	cfg := cluster.Config{Dir: dir, CompactEvery: 3}

	c1, err := cluster.New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c1.Join("first-half", "")
	if err != nil {
		t.Fatal(err)
	}
	// Settle half the matrix, compacting all the while.
	for i := 0; i < len(specs)/2; i++ {
		l, err := c1.Lease(w, "")
		if err != nil || l.State != cluster.LeaseCell {
			t.Fatalf("lease %d: %+v, %v", i, l, err)
		}
		res, err := harness.Run(l.Spec.Options)
		if err != nil {
			t.Fatal(err)
		}
		if err := c1.Complete(w, l.Cell, "", res, "", false); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := journal.Verify(filepath.Join(dir, "cluster.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Generation == 0 || !rep.SnapshotOK {
		t.Fatalf("mid-run compacted journal report: %+v", rep)
	}

	// Restart: the compacted journal must restore every settled cell.
	c2, err := cluster.New(cfg, specs)
	if err != nil {
		t.Fatalf("reopen over compacted journal: %v", err)
	}
	defer c2.Close()
	if got := c2.Stats().Done; got != len(specs)/2 {
		t.Fatalf("after reopen Done = %d, want %d", got, len(specs)/2)
	}

	// Finish the rest and compare end-to-end verdicts.
	w2, err := c2.Join("second-half", "")
	if err != nil {
		t.Fatal(err)
	}
	for {
		l, err := c2.Lease(w2, "")
		if err != nil {
			t.Fatal(err)
		}
		if l.State != cluster.LeaseCell {
			break
		}
		res, err := harness.Run(l.Spec.Options)
		if err != nil {
			t.Fatal(err)
		}
		if err := c2.Complete(w2, l.Cell, "", res, "", false); err != nil {
			t.Fatal(err)
		}
	}
	if got := canonical(t, c2.Results()); got != ref {
		t.Fatalf("compacted-cluster verdicts differ from single-process run:\ncluster:\n%s\nsingle:\n%s", got, ref)
	}
}
