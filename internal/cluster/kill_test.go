package cluster_test

import (
	"context"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"kard/internal/cluster"
	"kard/internal/harness"
)

// The SIGKILL test runs real subprocess workers via the helper-process
// idiom: the test binary re-execs itself running only
// TestClusterWorkerHelper, which (guarded by KARD_CLUSTER_WORKER_HELPER)
// behaves as `kardd -worker` — join the coordinator, drain leases, exit.
// KARD_CLUSTER_CELL_SLEEP_MS makes the victim dwell inside each cell so
// the mid-cell kill window is wide and deterministic.

func TestClusterWorkerHelper(t *testing.T) {
	if os.Getenv("KARD_CLUSTER_WORKER_HELPER") != "1" {
		t.Skip("helper process entry point; only meaningful when re-exec'd")
	}
	url := os.Getenv("KARD_CLUSTER_URL")
	name := os.Getenv("KARD_CLUSTER_WORKER_NAME")
	sleepMS, _ := strconv.Atoi(os.Getenv("KARD_CLUSTER_CELL_SLEEP_MS"))

	var store *harness.Cache
	if dir := os.Getenv("KARD_CLUSTER_STORE"); dir != "" {
		var err error
		if store, err = harness.OpenCache(dir); err != nil {
			t.Fatalf("helper: open store: %v", err)
		}
	}
	cl, err := cluster.Dial(url, name)
	if err != nil {
		t.Fatalf("helper: dial: %v", err)
	}
	err = cluster.RunWorker(context.Background(), cl, cluster.WorkerOptions{
		Store: store,
		OnCell: func(int, harness.Spec) {
			time.Sleep(time.Duration(sleepMS) * time.Millisecond)
		},
	})
	if err != nil {
		t.Fatalf("helper: worker: %v", err)
	}
}

// spawnHelperWorker re-execs the test binary as a subprocess worker.
func spawnHelperWorker(t *testing.T, url, name, storeDir string, cellSleep time.Duration) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestClusterWorkerHelper$")
	cmd.Env = append(os.Environ(),
		"KARD_CLUSTER_WORKER_HELPER=1",
		"KARD_CLUSTER_URL="+url,
		"KARD_CLUSTER_WORKER_NAME="+name,
		"KARD_CLUSTER_STORE="+storeDir,
		"KARD_CLUSTER_CELL_SLEEP_MS="+strconv.Itoa(int(cellSleep.Milliseconds())),
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn helper %s: %v", name, err)
	}
	return cmd
}

// TestClusterSIGKILLWorker is the acceptance scenario from ISSUE.md: a
// subprocess worker is SIGKILLed mid-cell; the coordinator must declare
// it dead, reassign its cell, and the surviving subprocess worker must
// finish the matrix with verdicts byte-identical to a single-process
// harness.RunMatrix run.
func TestClusterSIGKILLWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess SIGKILL test skipped in -short mode")
	}
	specs := testSpecs()
	ref := canonical(t, harness.RunMatrix(2, specs))

	coord, err := cluster.New(cluster.Config{
		Dir:              t.TempDir(),
		HeartbeatTimeout: 500 * time.Millisecond,
		Logf:             t.Logf,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()
	storeDir := t.TempDir()

	// The victim dwells 30s inside every cell — far longer than the test
	// allows — so the only way the matrix finishes is the kill, the death
	// declaration, and the reassignment actually happening.
	victim := spawnHelperWorker(t, ts.URL, "victim", storeDir, 30*time.Second)
	defer victim.Process.Kill()

	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("victim never leased a cell")
		}
		held := 0
		for _, w := range coord.Stats().Workers {
			if w.Name == "victim" && !w.Dead {
				held = w.Assigned
			}
		}
		if held > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
		t.Fatal(err)
	}
	_ = victim.Wait()
	t.Log("victim SIGKILLed mid-cell")

	healthy := spawnHelperWorker(t, ts.URL, "healthy", storeDir, 0)
	defer healthy.Process.Kill()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := coord.Wait(ctx); err != nil {
		t.Fatalf("matrix did not finish after the kill: %v (stats %+v)", err, coord.Stats())
	}
	if err := healthy.Wait(); err != nil {
		t.Fatalf("healthy worker exited non-zero: %v", err)
	}

	st := coord.Stats()
	if st.Reassigned == 0 {
		t.Fatal("the killed worker's cell was never reassigned")
	}
	var victimDead bool
	for _, w := range st.Workers {
		if w.Name == "victim" {
			victimDead = w.Dead
		}
	}
	if !victimDead {
		t.Fatal("victim was not declared dead")
	}
	if got := canonical(t, coord.Results()); got != ref {
		t.Fatalf("verdicts differ after SIGKILL + reassignment:\ncluster:\n%s\nsingle:\n%s", got, ref)
	}
}
