package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"testing"
	"time"

	"kard/internal/cluster"
	"kard/internal/harness"
)

// The coordinator crash-restart test inverts kill_test.go's helper
// idiom: here the *coordinator* is the subprocess (a test cannot SIGKILL
// itself), re-exec'd via TestClusterCoordHelper, while the workers run
// in-process and must ride out the crash on their retry budgets. The
// helper writes the canonical verdict bytes and its final stats to files
// when the matrix settles, so the parent can byte-diff them against a
// single-process reference.

func TestClusterCoordHelper(t *testing.T) {
	if os.Getenv("KARD_CLUSTER_COORD_HELPER") != "1" {
		t.Skip("helper process entry point; only meaningful when re-exec'd")
	}
	dir := os.Getenv("KARD_COORD_DIR")
	addr := os.Getenv("KARD_COORD_ADDR")
	doneFile := os.Getenv("KARD_COORD_DONEFILE")
	statsFile := os.Getenv("KARD_COORD_STATSFILE")
	hbMS, _ := strconv.Atoi(os.Getenv("KARD_COORD_HB_MS"))

	specs := testSpecs()
	coord, err := cluster.New(cluster.Config{
		Dir:              dir,
		HeartbeatTimeout: time.Duration(hbMS) * time.Millisecond,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[coord %d] "+format+"\n", append([]any{os.Getpid()}, args...)...)
		},
	}, specs)
	if err != nil {
		t.Fatalf("helper: cluster.New: %v", err)
	}
	defer coord.Close()

	// The restarted incarnation binds the same address its predecessor
	// held; retry briefly in case the kernel is still releasing it.
	var ln net.Listener
	bindDeadline := time.Now().Add(5 * time.Second)
	for {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		if time.Now().After(bindDeadline) {
			t.Fatalf("helper: bind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer ln.Close()
	go func() { _ = http.Serve(ln, coord.Handler()) }()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := coord.Wait(ctx); err != nil {
		t.Fatalf("helper: Wait: %v (stats %+v)", err, coord.Stats())
	}

	// Keep serving until every worker has observed "done" and exited
	// (clean-exited workers stop heartbeating and are declared dead
	// within the heartbeat timeout). Exiting the moment the matrix
	// settles would strand a worker mid-lease-poll against a dead
	// address, burning its whole retry budget.
	drainDeadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(drainDeadline) {
		live := 0
		for _, w := range coord.Stats().Workers {
			if !w.Dead {
				live++
			}
		}
		if live == 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	verdicts := canonical(t, coord.Results())
	stats, err := json.Marshal(coord.Stats())
	if err != nil {
		t.Fatalf("helper: marshal stats: %v", err)
	}
	// Write-then-rename so the parent never reads a partial file.
	for path, body := range map[string]string{doneFile: verdicts, statsFile: string(stats)} {
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
			t.Fatalf("helper: write %s: %v", path, err)
		}
		if err := os.Rename(tmp, path); err != nil {
			t.Fatalf("helper: rename %s: %v", path, err)
		}
	}
}

// spawnCoordHelper re-execs the test binary as a coordinator subprocess.
func spawnCoordHelper(t *testing.T, dir, addr, doneFile, statsFile string, hb time.Duration) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestClusterCoordHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"KARD_CLUSTER_COORD_HELPER=1",
		"KARD_COORD_DIR="+dir,
		"KARD_COORD_ADDR="+addr,
		"KARD_COORD_DONEFILE="+doneFile,
		"KARD_COORD_STATSFILE="+statsFile,
		"KARD_COORD_HB_MS="+strconv.Itoa(int(hb.Milliseconds())),
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn coordinator helper: %v", err)
	}
	return cmd
}

// coordStats polls GET /cluster/stats; ok=false while the coordinator is
// unreachable (down, restarting, or not yet listening).
func coordStats(url string) (cluster.Stats, bool) {
	hc := &http.Client{Timeout: time.Second}
	resp, err := hc.Get(url + "/cluster/stats")
	if err != nil {
		return cluster.Stats{}, false
	}
	defer resp.Body.Close()
	var st cluster.Stats
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil {
		return cluster.Stats{}, false
	}
	return st, true
}

// TestClusterCoordinatorCrashRestart is the acceptance scenario: the
// coordinator process is SIGKILLed mid-run with two live workers, a
// fresh process resumes from the journal on the same address, the
// workers ride out the outage on their retry budgets and are re-admitted
// under their old identities (rejoin grace), and the final verdicts are
// byte-identical to a single-process run.
func TestClusterCoordinatorCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess coordinator crash test skipped in -short mode")
	}
	specs := testSpecs()
	ref := canonical(t, harness.RunMatrix(2, specs))

	dir := t.TempDir()
	outDir := t.TempDir()
	store, err := harness.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Reserve an address: the coordinator must come back on the same one
	// so the workers' retries find it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	url := "http://" + addr

	victim := spawnCoordHelper(t, dir, addr,
		outDir+"/done1", outDir+"/stats1", 2*time.Second)
	defer victim.Process.Kill()
	bootDeadline := time.Now().Add(15 * time.Second)
	for {
		if _, ok := coordStats(url); ok {
			break
		}
		if time.Now().After(bootDeadline) {
			t.Fatal("coordinator helper never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Two live in-process workers with retry budgets sized to outlast the
	// restart gap even on a heavily loaded machine (the full test suite
	// runs packages in parallel, so re-execing the helper binary can take
	// many seconds), and FenceAfter high enough that they keep their
	// identities for the rejoin-grace path instead of fencing.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		cl, err := cluster.DialWith(ctx, url, fmt.Sprintf("survivor-%d", i), cluster.ClientOptions{
			BackoffBase: 20 * time.Millisecond,
			BackoffCap:  500 * time.Millisecond,
			MaxAttempts: 300,
			MaxElapsed:  2 * time.Minute,
		})
		if err != nil {
			t.Fatalf("dial worker %d: %v", i, err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = cluster.RunWorker(ctx, cl, cluster.WorkerOptions{
				Store:          store,
				HeartbeatEvery: 200 * time.Millisecond,
				FenceAfter:     50,
				OnCell:         func(int, harness.Spec) { time.Sleep(300 * time.Millisecond) },
			})
		}(i)
	}

	// Kill mid-run: some cells settled, some still outstanding.
	killDeadline := time.Now().Add(60 * time.Second)
	for {
		st, ok := coordStats(url)
		if ok && st.Done >= 1 && st.Done < len(specs) {
			t.Logf("SIGKILLing coordinator at %d/%d cells done", st.Done, len(specs))
			break
		}
		if ok && st.Done == len(specs) {
			t.Fatal("matrix finished before the kill window; slow the cells down")
		}
		if time.Now().After(killDeadline) {
			t.Fatal("matrix never reached the mid-run kill window")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
		t.Fatal(err)
	}
	_ = victim.Wait()

	successor := spawnCoordHelper(t, dir, addr,
		outDir+"/done2", outDir+"/stats2", 2*time.Second)
	defer successor.Process.Kill()

	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d did not survive the coordinator crash: %v", i, err)
		}
	}
	if err := successor.Wait(); err != nil {
		t.Fatalf("restarted coordinator exited non-zero: %v", err)
	}

	got, err := os.ReadFile(outDir + "/done2")
	if err != nil {
		t.Fatalf("restarted coordinator never wrote its verdicts: %v", err)
	}
	if string(got) != ref {
		t.Fatalf("verdicts differ after coordinator SIGKILL + restart:\ncluster:\n%s\nsingle:\n%s", got, ref)
	}

	var st cluster.Stats
	sb, err := os.ReadFile(outDir + "/stats2")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(sb, &st); err != nil {
		t.Fatal(err)
	}
	if st.Rejoined < 1 {
		t.Fatalf("restarted coordinator re-admitted %d workers, want >= 1 (rejoin grace): %+v", st.Rejoined, st)
	}
	if st.Done != len(specs) || st.Failed != 0 {
		t.Fatalf("restarted coordinator settled done=%d failed=%d, want %d/0", st.Done, st.Failed, len(specs))
	}
	t.Logf("restart survived: %+v", st)
}
