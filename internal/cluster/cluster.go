// Package cluster shards a detection matrix across worker processes: a
// coordinator owns the full workload × detector × seed matrix
// ([]harness.Spec), leases one cell at a time to workers, journals every
// assignment and completion through the same CRC-framed WAL the
// detection service uses (internal/service/journal), and merges finished
// cells back in spec order — so the verdict set is byte-identical to a
// single-process harness.RunMatrix run, no matter how many workers ran
// it, which died, or which cells were reassigned. DESIGN.md §9 is the
// architecture document this package implements; OPERATIONS.md is the
// runbook for driving it.
//
// Workers are processes, not goroutines: `kardd -worker` connects to a
// coordinator over HTTP (the same conventions as the detection service's
// API), polls for leases, heartbeats while it computes, and reports each
// cell's result. Local subprocess workers and remote workers are the
// same protocol — the only difference is whether the -store directory
// (the shared artifact store, a harness.Cache) is the same filesystem.
// A cell completed by any worker lands in the store under its
// content-addressed key before the completion is reported, so no peer —
// including a reassigned successor after a SIGKILL — ever recomputes it.
//
// Failure model: liveness is heartbeats (every worker RPC refreshes the
// worker's lastSeen; a dedicated heartbeat RPC covers long cells). The
// coordinator's monitor declares a worker dead after HeartbeatTimeout
// without contact, revokes its leases, and requeues the cells;
// individual cells that outlive CellDeadline are revoked from a live
// worker the same way (a stall, not a death). Each cell is assigned at
// most MaxAttempts times — beyond that it settles as failed rather than
// cycling forever. Because the simulations are deterministic and merge
// order is spec order, none of this reassignment machinery can change
// the final bytes; it only changes who computed them.
package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"kard/internal/harness"
	"kard/internal/obs"
	"kard/internal/service/journal"
	"kard/internal/trace"
)

// coordPid is the coordinator's Chrome-trace process row (pid 1 is the
// harness's per-cell campaign, pid 2 the detection service).
const coordPid = 3

// Errors the coordinator RPCs return.
var (
	// ErrUnknownWorker rejects RPCs from a worker ID the coordinator does
	// not know or has declared dead. Workers recover by rejoining under a
	// fresh ID; their half-finished cell is either already reassigned or
	// still completable under the new ID.
	ErrUnknownWorker = errors.New("cluster: unknown or dead worker")
	// ErrMatrixMismatch rejects reopening a coordinator directory against
	// a different spec matrix than the journal was written for.
	ErrMatrixMismatch = errors.New("cluster: journal belongs to a different matrix")
	// ErrClosed rejects RPCs after Close.
	ErrClosed = errors.New("cluster: coordinator closed")
)

// Config parameterizes a Coordinator.
type Config struct {
	// Dir is the coordinator state directory; the assignment journal
	// (cluster.wal) lives under it.
	Dir string
	// Store is the shared artifact store — the content-addressed result
	// cache every worker checks before simulating and writes after.
	// Local subprocess workers open the same directory; the coordinator
	// itself only reads it for Stats.
	Store *harness.Cache
	// HeartbeatTimeout is how long a worker may go silent before the
	// monitor declares it dead and requeues its cells (default 5s).
	HeartbeatTimeout time.Duration
	// CellDeadline bounds one assignment's age: a cell still unfinished
	// after it is revoked and requeued even if the worker is heartbeating
	// (a stalled cell, not a dead worker). Default 5m; it should exceed
	// the cell timeout in the specs so the harness watchdog fires first.
	CellDeadline time.Duration
	// MaxAttempts caps assignments per cell (default 3). A cell revoked
	// that many times settles as failed instead of cycling forever.
	MaxAttempts int
	// RejoinGrace is how long after a coordinator restart the journaled
	// live workers of the previous incarnation keep their identity: a
	// worker that contacts the new coordinator within the grace window is
	// re-admitted under its old ID (no 410, no rejoin churn); one that
	// stays silent is declared dead as usual. Default 2×HeartbeatTimeout.
	RejoinGrace time.Duration
	// CompactEvery is how many assignment-journal appends may accumulate
	// before the WAL is compacted: the matrix identity, settled cells,
	// and live workers move into the checksummed snapshot and the WAL
	// restarts empty (DESIGN.md §11). 0 means the default (1024);
	// negative disables compaction.
	CompactEvery int
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Trace, when non-nil, records the coordinator's RPC handling onto
	// the tracer's coordinator track: one server span per executed
	// join/lease/complete (stitched to the worker's client span via the
	// propagated trace context), heartbeat micro-spans, and dedup hits
	// as instants — a duplicated delivery never opens a second span.
	Trace *trace.Tracer
}

func (c *Config) defaults() {
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 5 * time.Second
	}
	if c.CellDeadline <= 0 {
		c.CellDeadline = 5 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RejoinGrace <= 0 {
		c.RejoinGrace = 2 * c.HeartbeatTimeout
	}
	if c.CompactEvery == 0 {
		c.CompactEvery = 1024
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// record is the assignment-journal payload envelope. Formats are
// documented in DESIGN.md §9; the framing (length, CRC-32C, fsync per
// append, torn-tail truncation on replay) is internal/service/journal's.
type record struct {
	T           string          `json:"t"` // matrix | join | assign | complete | dead
	Fingerprint string          `json:"fp,omitempty"`
	Cells       int             `json:"cells,omitempty"`
	Seq         int             `json:"seq,omitempty"` // worker-ID counter floor (snapshot matrix records)
	Worker      string          `json:"worker,omitempty"`
	Name        string          `json:"name,omitempty"`
	Cell        int             `json:"cell"`
	Attempt     int             `json:"attempt,omitempty"`
	Rid         string          `json:"rid,omitempty"`
	Err         string          `json:"err,omitempty"`
	Cached      bool            `json:"cached,omitempty"`
	Result      *harness.Result `json:"result,omitempty"`
}

type cellStatus uint8

const (
	cellPending cellStatus = iota
	cellAssigned
	cellDone
	cellFailed
)

// cell is the coordinator-side state of one matrix cell.
type cell struct {
	status     cellStatus
	worker     string
	assignedAt time.Time
	attempts   int
	result     *harness.Result
	cached     bool
	err        string
}

// workerState is the coordinator-side view of one worker.
type workerState struct {
	id        string
	name      string
	joined    time.Time
	lastSeen  time.Time
	dead      bool
	assigned  map[int]bool
	completed uint64
	// restored marks a worker re-admitted from the journal after a
	// coordinator restart; graceUntil is how long the monitor waits for
	// its first contact before declaring it dead.
	restored   bool
	graceUntil time.Time
}

// dedupAnswer is one remembered RPC answer in the request-ID window.
// Join answers carry the worker ID; cell leases carry the Lease; a
// remembered complete carries neither (its answer is just "ok").
type dedupAnswer struct {
	worker string
	lease  *Lease
}

// ridWindow bounds the dedup window; older request IDs are evicted in
// insertion order. 4096 covers every in-flight RPC a realistic worker
// fleet can have outstanding by orders of magnitude.
const ridWindow = 4096

// Coordinator shards one matrix across joined workers. Create it with
// New; it is safe for concurrent use (every RPC may arrive from a
// different worker connection).
type Coordinator struct {
	cfg   Config
	specs []harness.Spec
	jr    *journal.Journal
	// trk is the coordinator's RPC track (nil when Config.Trace is nil);
	// c.mu serializes every RPC, so server spans nest trivially on it.
	trk *trace.Track

	mu           sync.Mutex
	cells        []cell
	workers      map[string]*workerState
	pending      []int // requeueable cell indices, ascending
	remaining    int   // cells not yet done or failed
	seq          int   // worker ID counter
	reassigned   uint64
	rejoined     uint64
	dedupHits    uint64
	sinceCompact int // journal appends since the last WAL compaction
	closed       bool
	doneCh       chan struct{}

	// rids is the request-ID dedup window (DESIGN.md §9, "Retries and
	// idempotency"): a retried join/lease/complete whose rid is here is
	// answered from memory instead of re-executed. ridOrder evicts in
	// insertion order at ridWindow entries. replayLease maps rids of
	// journaled assignments from the previous incarnation to their cell:
	// a lease retried across a coordinator restart re-leases exactly the
	// cell it was originally answered with.
	rids        map[string]dedupAnswer
	ridOrder    []string
	replayLease map[string]int

	stopMonitor chan struct{}
	monitorDone chan struct{}
}

// fingerprint identifies a matrix: the hash of its canonical JSON. Spec
// factories (Make) are excluded from JSON and rejected by New, so the
// fingerprint covers everything that determines the cells' results.
func fingerprint(specs []harness.Spec) string {
	b, err := json.Marshal(specs)
	if err != nil {
		panic(fmt.Sprintf("cluster: matrix fingerprint: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// New opens (creating if needed) a coordinator for specs under cfg.Dir.
// Reopening a directory whose journal already holds completions for the
// same matrix restores them — those cells are never recomputed; a
// journal written for a different matrix is refused (ErrMatrixMismatch).
func New(cfg Config, specs []harness.Spec) (*Coordinator, error) {
	cfg.defaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("cluster: Config.Dir is required")
	}
	for i, s := range specs {
		if s.Make != nil {
			return nil, fmt.Errorf("cluster: spec %d (%s) has a factory; only registry workloads are serializable to workers", i, s.Label())
		}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	jr, payloads, err := journal.Open(filepath.Join(cfg.Dir, "cluster.wal"))
	if err != nil {
		return nil, err
	}
	jr.SetFsyncHistogram(obs.Std.ClusterJournalFsync)

	c := &Coordinator{
		cfg:         cfg,
		specs:       specs,
		jr:          jr,
		cells:       make([]cell, len(specs)),
		workers:     map[string]*workerState{},
		remaining:   len(specs),
		doneCh:      make(chan struct{}),
		stopMonitor: make(chan struct{}),
		monitorDone: make(chan struct{}),
		rids:        map[string]dedupAnswer{},
		replayLease: map[string]int{},
	}
	cfg.Trace.ProcessName(coordPid, "kard-coordinator")
	c.trk = cfg.Trace.Track(coordPid, 1, "coordinator", 0)
	if err := c.replay(payloads); err != nil {
		jr.Close()
		return nil, err
	}
	for i := range c.cells {
		if c.cells[i].status == cellPending {
			c.pending = append(c.pending, i)
		}
	}
	if c.remaining == 0 {
		close(c.doneCh)
	}
	go c.monitor()
	return c, nil
}

// replay folds journal records into cell state and the restart-survival
// state: the matrix identity, the completed (or deterministically
// failed) cells, the request-ID dedup window, and — new with the rejoin
// grace — the previous incarnation's live workers, re-admitted under
// their old IDs for Config.RejoinGrace so a coordinator restart doesn't
// strand them behind 410s. Open leases are NOT restored as assignments
// (their cells stay pending, i.e. each in-flight lease is requeued
// exactly once); instead their rids land in replayLease so a lease
// retried across the restart re-leases the same cell.
func (c *Coordinator) replay(payloads [][]byte) error {
	fp := fingerprint(c.specs)
	if len(payloads) == 0 {
		b, err := json.Marshal(record{T: "matrix", Fingerprint: fp, Cells: len(c.specs)})
		if err != nil {
			return fmt.Errorf("cluster: journal encode: %w", err)
		}
		return c.jr.Append(b)
	}
	joined := map[string]string{} // live-at-crash workers: id → name
	for i, p := range payloads {
		var r record
		if err := json.Unmarshal(p, &r); err != nil {
			c.cfg.Logf("cluster: skipping unreadable journal record: %v", err)
			continue
		}
		switch r.T {
		case "matrix":
			if i == 0 && (r.Fingerprint != fp || r.Cells != len(c.specs)) {
				return fmt.Errorf("%w: journal %s/%d cells, specs %s/%d cells",
					ErrMatrixMismatch, r.Fingerprint, r.Cells, fp, len(c.specs))
			}
			// Snapshot matrix records carry the worker-ID counter floor,
			// so IDs stay unique even after join records are compacted.
			if r.Seq > c.seq {
				c.seq = r.Seq
			}
		case "join":
			c.seq++ // keep IDs unique across incarnations in the audit trail
			if r.Worker != "" {
				joined[r.Worker] = r.Name
			}
		case "assign":
			if r.Rid != "" && r.Cell >= 0 && r.Cell < len(c.cells) {
				c.replayLease[r.Rid] = r.Cell
			}
		case "complete":
			if r.Rid != "" {
				c.addRidLocked(r.Rid, dedupAnswer{})
			}
			if r.Cell < 0 || r.Cell >= len(c.cells) || c.cells[r.Cell].status == cellDone || c.cells[r.Cell].status == cellFailed {
				continue
			}
			cl := &c.cells[r.Cell]
			if r.Err != "" {
				cl.status, cl.err = cellFailed, r.Err
			} else if r.Result != nil {
				cl.status, cl.result, cl.cached = cellDone, r.Result, r.Cached
			} else {
				continue
			}
			c.remaining--
		case "dead":
			delete(joined, r.Worker)
		}
	}
	if restored := len(c.specs) - c.remaining; restored > 0 {
		c.cfg.Logf("cluster: journal restored %d/%d cells", restored, len(c.specs))
	}
	// Re-admit the previous incarnation's live workers under their old
	// identity. They hold no assignments here (their in-flight cells are
	// already back in pending); if they don't call within the grace
	// window the monitor declares them dead exactly as if they went
	// silent mid-run.
	now := time.Now()
	for id, name := range joined {
		c.workers[id] = &workerState{
			id: id, name: name, joined: now, lastSeen: now,
			assigned: map[int]bool{}, restored: true,
			graceUntil: now.Add(c.cfg.RejoinGrace),
		}
		obs.Std.ClusterWorkersLive.Inc()
	}
	if len(joined) > 0 {
		c.cfg.Logf("cluster: re-admitted %d journaled workers for %v rejoin grace", len(joined), c.cfg.RejoinGrace)
	}
	return nil
}

// addRidLocked records one answered request ID, evicting the oldest
// entry past ridWindow. Callers hold c.mu (or run before the coordinator
// is shared).
func (c *Coordinator) addRidLocked(rid string, a dedupAnswer) {
	if rid == "" {
		return
	}
	if _, ok := c.rids[rid]; ok {
		return
	}
	if len(c.ridOrder) >= ridWindow {
		delete(c.rids, c.ridOrder[0])
		c.ridOrder = c.ridOrder[1:]
	}
	c.rids[rid] = a
	c.ridOrder = append(c.ridOrder, rid)
}

// appendLocked journals one record. Loss of assign/dead records costs
// only audit fidelity; loss of a complete record costs recomputation
// after a crash — never correctness — so every append is best-effort
// beyond logging. Callers hold c.mu.
func (c *Coordinator) appendLocked(r record) {
	b, err := json.Marshal(r)
	if err == nil {
		err = c.jr.Append(b)
	}
	if err != nil {
		c.cfg.Logf("cluster: journal append failed (recomputable after a crash): %v", err)
		return
	}
	// Count the append but do NOT compact here: Complete journals before
	// it settles the cell in memory, and a snapshot taken in that window
	// would drop the record being appended. Compaction happens at the
	// consistency points that call maybeCompactLocked explicitly.
	c.sinceCompact++
}

// maybeCompactLocked compacts the assignment WAL on cadence: matrix
// identity, settled cells, live workers, and the worker-ID floor move
// into the checksummed snapshot and the WAL restarts empty. Failure is
// non-fatal — the uncompacted WAL stays authoritative. Callers hold c.mu.
func (c *Coordinator) maybeCompactLocked() {
	if c.cfg.CompactEvery <= 0 || c.sinceCompact < c.cfg.CompactEvery || c.closed {
		return
	}
	payloads, err := c.snapshotLocked()
	if err != nil {
		c.cfg.Logf("cluster: compaction snapshot encode failed: %v", err)
		return
	}
	if err := c.jr.Compact(payloads); err != nil {
		c.cfg.Logf("cluster: journal compaction failed (WAL keeps growing): %v", err)
		return
	}
	c.sinceCompact = 0
	c.cfg.Logf("cluster: journal compacted to %d snapshot records", len(payloads))
}

// snapshotLocked serializes the coordinator's recoverable state as a
// record sequence whose replay reconstructs it: the matrix record first
// (replay validates index 0), one complete per settled cell in cell
// order, and one join per live worker. Open leases are deliberately
// absent — replay requeues their cells exactly as it does after a crash.
// Callers hold c.mu.
func (c *Coordinator) snapshotLocked() ([][]byte, error) {
	var payloads [][]byte
	add := func(r record) error {
		b, err := json.Marshal(r)
		if err != nil {
			return err
		}
		payloads = append(payloads, b)
		return nil
	}
	if err := add(record{T: "matrix", Fingerprint: fingerprint(c.specs), Cells: len(c.specs), Seq: c.seq}); err != nil {
		return nil, err
	}
	for i := range c.cells {
		cl := &c.cells[i]
		switch cl.status {
		case cellDone:
			if err := add(record{T: "complete", Worker: cl.worker, Cell: i, Cached: cl.cached, Result: cl.result}); err != nil {
				return nil, err
			}
		case cellFailed:
			if err := add(record{T: "complete", Worker: cl.worker, Cell: i, Err: cl.err}); err != nil {
				return nil, err
			}
		}
	}
	ids := make([]string, 0, len(c.workers))
	for id, w := range c.workers {
		if !w.dead {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := add(record{T: "join", Worker: id, Name: c.workers[id].name}); err != nil {
			return nil, err
		}
	}
	return payloads, nil
}

// Join registers a worker and returns its ID. The name is operator-facing
// (host, pid); the ID is the lease identity. A retried join (same rid)
// returns the originally minted ID instead of registering a ghost.
func (c *Coordinator) Join(name, rid string) (string, error) {
	return c.join(name, rid, trace.SpanContext{})
}

// join is Join plus the propagated trace context the HTTP handler
// extracted; direct (in-process) callers pass the zero context.
func (c *Coordinator) join(name, rid string, sc trace.SpanContext) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", ErrClosed
	}
	if a, ok := c.rids[rid]; ok && rid != "" && a.worker != "" {
		c.dedupHits++
		obs.Std.ClusterDedupHits.Inc()
		// A duplicated delivery answers from the window and must not
		// open a second server span — the original execution recorded it.
		c.trk.InstantArg("rpc.join.dup", "cluster", c.trk.Now(), "rid", rid, 0)
		return a.worker, nil
	}
	c.trk.BeginLinked("rpc.join", "cluster", c.trk.Now(), sc.Span, "rid", rid)
	defer func() { c.trk.End("rpc.join", "cluster", c.trk.Now()) }()
	c.seq++
	id := fmt.Sprintf("w%d", c.seq)
	now := time.Now()
	c.workers[id] = &workerState{id: id, name: name, joined: now, lastSeen: now, assigned: map[int]bool{}}
	obs.Std.ClusterWorkersLive.Inc()
	c.addRidLocked(rid, dedupAnswer{worker: id})
	c.appendLocked(record{T: "join", Worker: id, Name: name, Rid: rid})
	c.maybeCompactLocked()
	c.cfg.Logf("cluster: worker %s (%s) joined", id, name)
	return id, nil
}

// touchLocked refreshes a worker's liveness and returns it, or nil if the
// ID is unknown or already declared dead. The first contact from a
// worker re-admitted after a coordinator restart completes its rejoin.
// Callers hold c.mu.
func (c *Coordinator) touchLocked(id string) *workerState {
	w := c.workers[id]
	if w == nil || w.dead {
		return nil
	}
	w.lastSeen = time.Now()
	if w.restored {
		w.restored = false
		c.rejoined++
		obs.Std.ClusterWorkersRejoined.Inc()
		obs.Flight.Recordf(obs.EvWorkerRejoin,
			"worker %s (%s) rejoined after coordinator restart", w.id, w.name)
		c.cfg.Logf("cluster: worker %s (%s) rejoined after coordinator restart", w.id, w.name)
	}
	return w
}

// Heartbeat refreshes a worker's liveness without requesting work — the
// RPC a worker issues while a long cell computes.
func (c *Coordinator) Heartbeat(id string) error {
	return c.heartbeat(id, trace.SpanContext{})
}

func (c *Coordinator) heartbeat(id string, sc trace.SpanContext) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.touchLocked(id) == nil {
		return ErrUnknownWorker
	}
	// A micro-span rather than an instant so the worker's client span
	// stitches to it like every other RPC.
	c.trk.BeginLinked("rpc.heartbeat", "cluster", c.trk.Now(), sc.Span, "worker", id)
	c.trk.End("rpc.heartbeat", "cluster", c.trk.Now())
	return nil
}

// LeaseState tells a worker what to do next.
type LeaseState string

const (
	// LeaseCell carries one cell to execute.
	LeaseCell LeaseState = "cell"
	// LeaseWait means no cell is available right now (all assigned) but
	// the matrix is unfinished: poll again.
	LeaseWait LeaseState = "wait"
	// LeaseDone means every cell has settled: the worker should exit.
	LeaseDone LeaseState = "done"
)

// Lease is one scheduling decision handed to a worker.
type Lease struct {
	State LeaseState   `json:"state"`
	Cell  int          `json:"cell"`
	Spec  harness.Spec `json:"spec"`
}

// Lease hands the lowest pending cell to the worker, journaling the
// assignment. With nothing pending it reports wait or done. A retried
// lease (same rid) returns the originally assigned cell — within an
// incarnation from the dedup window, across a coordinator restart from
// the journaled assignment's rid — so a lease whose response the network
// lost never strands a second cell on the same worker.
func (c *Coordinator) Lease(id, rid string) (Lease, error) {
	return c.lease(id, rid, trace.SpanContext{})
}

func (c *Coordinator) lease(id, rid string, sc trace.SpanContext) (Lease, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return Lease{}, ErrClosed
	}
	w := c.touchLocked(id)
	if w == nil {
		return Lease{}, ErrUnknownWorker
	}
	if a, ok := c.rids[rid]; ok && rid != "" && a.lease != nil {
		c.dedupHits++
		obs.Std.ClusterDedupHits.Inc()
		c.trk.InstantArg("rpc.lease.dup", "cluster", c.trk.Now(), "rid", rid, 0)
		return *a.lease, nil
	}
	c.trk.BeginLinked("rpc.lease", "cluster", c.trk.Now(), sc.Span, "rid", rid)
	defer func() { c.trk.End("rpc.lease", "cluster", c.trk.Now()) }()
	i, reuse := -1, false
	if j, ok := c.replayLease[rid]; ok && rid != "" {
		delete(c.replayLease, rid)
		if c.cells[j].status == cellPending {
			// The previous incarnation answered this rid with cell j and
			// the restart requeued it; keep the original answer.
			i, reuse = j, true
			for k, p := range c.pending {
				if p == j {
					c.pending = append(c.pending[:k], c.pending[k+1:]...)
					break
				}
			}
		}
	}
	if i < 0 {
		if len(c.pending) == 0 {
			if c.remaining == 0 {
				return Lease{State: LeaseDone}, nil
			}
			return Lease{State: LeaseWait}, nil
		}
		i = c.pending[0]
		c.pending = c.pending[1:]
	}
	cl := &c.cells[i]
	cl.status = cellAssigned
	cl.worker = id
	cl.assignedAt = time.Now()
	cl.attempts++
	w.assigned[i] = true
	obs.Std.ClusterCellsInflight.Inc()
	if reuse {
		c.cfg.Logf("cluster: lease rid %s re-answered with journaled cell %d after restart", rid, i)
	}
	l := Lease{State: LeaseCell, Cell: i, Spec: c.specs[i]}
	c.addRidLocked(rid, dedupAnswer{lease: &l})
	c.appendLocked(record{T: "assign", Worker: id, Cell: i, Attempt: cl.attempts, Rid: rid})
	c.maybeCompactLocked()
	return l, nil
}

// Complete settles one cell with a worker's outcome. It is idempotent —
// a duplicate completion (the cell was reassigned and both workers
// finished, or a retry after a dropped response) is ignored, which is
// sound because the simulations are deterministic: every completion of a
// cell carries the same bytes. A non-empty errMsg settles the cell as
// failed (deterministic failures fail everywhere; the transient ones
// were already retried inside the harness).
func (c *Coordinator) Complete(id string, i int, rid string, res *harness.Result, errMsg string, cached bool) error {
	return c.complete(id, i, rid, res, errMsg, cached, trace.SpanContext{})
}

func (c *Coordinator) complete(id string, i int, rid string, res *harness.Result, errMsg string, cached bool, sc trace.SpanContext) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if _, ok := c.rids[rid]; ok && rid != "" {
		// A retried completion (response lost, or duplicated by the
		// network) — already executed and journaled, answer ok again.
		c.dedupHits++
		obs.Std.ClusterDedupHits.Inc()
		c.trk.InstantArg("rpc.complete.dup", "cluster", c.trk.Now(), "rid", rid, 0)
		return nil
	}
	c.trk.BeginLinked("rpc.complete", "cluster", c.trk.Now(), sc.Span, "rid", rid)
	defer func() { c.trk.End("rpc.complete", "cluster", c.trk.Now()) }()
	w := c.touchLocked(id)
	if w == nil {
		return ErrUnknownWorker
	}
	if i < 0 || i >= len(c.cells) {
		return fmt.Errorf("cluster: cell %d out of range", i)
	}
	if errMsg == "" && res == nil {
		return fmt.Errorf("cluster: completion of cell %d carries neither result nor error", i)
	}
	cl := &c.cells[i]
	if cl.status == cellDone || cl.status == cellFailed {
		delete(w.assigned, i)
		c.addRidLocked(rid, dedupAnswer{})
		return nil // duplicate: already settled identically
	}
	switch cl.status {
	case cellAssigned:
		obs.Std.ClusterCellsInflight.Dec()
		if cl.worker != id {
			// The cell was revoked and reassigned; this is the original
			// worker finishing anyway. Accept it (deterministic) and let
			// the successor's completion hit the duplicate path.
			if ow := c.workers[cl.worker]; ow != nil {
				delete(ow.assigned, i)
			}
		}
	case cellPending:
		// Revoked but not yet re-leased; pull it from the queue so no
		// successor re-runs a settled cell.
		for k, p := range c.pending {
			if p == i {
				c.pending = append(c.pending[:k], c.pending[k+1:]...)
				break
			}
		}
	}
	c.addRidLocked(rid, dedupAnswer{})
	c.appendLocked(record{T: "complete", Worker: id, Cell: i, Rid: rid, Err: errMsg, Cached: cached, Result: res})
	if errMsg != "" {
		cl.status, cl.err = cellFailed, errMsg
		c.cfg.Logf("cluster: cell %d (%s) failed on %s: %s", i, c.specs[i].Label(), id, errMsg)
	} else {
		cl.status, cl.result, cl.cached = cellDone, res, cached
	}
	cl.worker = ""
	delete(w.assigned, i)
	w.completed++
	obs.Std.ClusterCellsCompleted.Inc()
	c.remaining--
	if c.remaining == 0 {
		close(c.doneCh)
	}
	c.maybeCompactLocked()
	return nil
}

// monitor is the liveness sweep: it refreshes per-worker heartbeat-age
// gauges, declares silent workers dead, and revokes stalled assignments.
func (c *Coordinator) monitor() {
	defer close(c.monitorDone)
	interval := c.cfg.HeartbeatTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stopMonitor:
			return
		case <-t.C:
			c.sweep()
		}
	}
}

// sweep performs one monitor pass.
func (c *Coordinator) sweep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	now := time.Now()
	for _, w := range c.workers {
		if w.dead {
			continue
		}
		age := now.Sub(w.lastSeen)
		obs.Std.WorkerHeartbeatAge(w.id).Set(age.Milliseconds())
		if w.restored && now.Before(w.graceUntil) {
			continue // rejoin grace: give restart survivors time to call
		}
		if age > c.cfg.HeartbeatTimeout {
			w.dead = true
			obs.Std.ClusterWorkersLive.Dec()
			obs.Std.ClusterWorkersDead.Inc()
			obs.Flight.Recordf(obs.EvWorkerDead, "worker %s (%s) silent for %v, revoking %d cells",
				w.id, w.name, age.Round(time.Millisecond), len(w.assigned))
			c.appendLocked(record{T: "dead", Worker: w.id})
			c.cfg.Logf("cluster: worker %s (%s) declared dead after %v; revoking %d cells",
				w.id, w.name, age.Round(time.Millisecond), len(w.assigned))
			for i := range w.assigned {
				c.revokeLocked(i, "worker dead")
			}
			w.assigned = map[int]bool{}
		}
	}
	for i := range c.cells {
		cl := &c.cells[i]
		if cl.status == cellAssigned && now.Sub(cl.assignedAt) > c.cfg.CellDeadline {
			if w := c.workers[cl.worker]; w != nil {
				delete(w.assigned, i)
			}
			c.revokeLocked(i, "assignment stalled")
		}
	}
	c.maybeCompactLocked()
}

// revokeLocked returns an assigned cell to the pending queue — or, past
// the attempt cap, settles it as failed. Callers hold c.mu and have
// removed the cell from its worker's assigned set.
func (c *Coordinator) revokeLocked(i int, why string) {
	cl := &c.cells[i]
	if cl.status != cellAssigned {
		return
	}
	obs.Std.ClusterCellsInflight.Dec()
	obs.Std.ClusterCellsReassigned.Inc()
	c.reassigned++
	obs.Flight.Recordf(obs.EvCellReassign, "cell %d (%s) revoked from %s (%s), attempt %d/%d",
		i, c.specs[i].Label(), cl.worker, why, cl.attempts, c.cfg.MaxAttempts)
	if cl.attempts >= c.cfg.MaxAttempts {
		msg := fmt.Sprintf("cluster: cell %s failed: %s after %d assignment attempts", c.specs[i].Label(), why, cl.attempts)
		c.appendLocked(record{T: "complete", Cell: i, Err: msg})
		cl.status, cl.err, cl.worker = cellFailed, msg, ""
		c.remaining--
		if c.remaining == 0 {
			close(c.doneCh)
		}
		c.cfg.Logf("%s", msg)
		c.maybeCompactLocked()
		return
	}
	cl.status, cl.worker = cellPending, ""
	c.pending = append(c.pending, i)
	sort.Ints(c.pending)
	c.cfg.Logf("cluster: cell %d (%s) requeued (%s), attempt %d/%d",
		i, c.specs[i].Label(), why, cl.attempts, c.cfg.MaxAttempts)
}

// Wait blocks until every cell has settled (done or failed) or ctx ends.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Results merges the settled cells in spec order — the same merge
// RunMatrix performs, which is the whole determinism argument: each
// cell's Result is a deterministic function of its Spec, and position in
// the output is position in the input, so the merged set is
// byte-identical to a single-process run regardless of scheduling
// history. Unsettled cells (Wait not yet done) carry a nil Result and
// nil Err.
func (c *Coordinator) Results() []harness.MatrixResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]harness.MatrixResult, len(c.specs))
	for i := range c.specs {
		out[i] = harness.MatrixResult{Spec: c.specs[i], Index: i, Cached: c.cells[i].cached}
		switch c.cells[i].status {
		case cellDone:
			out[i].Result = c.cells[i].result
		case cellFailed:
			out[i].Err = errors.New(c.cells[i].err)
		}
	}
	return out
}

// WorkerStatus is the operator view of one worker.
type WorkerStatus struct {
	ID           string `json:"id"`
	Name         string `json:"name"`
	Dead         bool   `json:"dead"`
	Assigned     int    `json:"assigned"`
	Completed    uint64 `json:"completed"`
	HeartbeatAge int64  `json:"heartbeatAgeMs"`
}

// Stats is the coordinator snapshot behind GET /cluster/stats.
type Stats struct {
	Cells       int            `json:"cells"`
	Done        int            `json:"done"`
	Failed      int            `json:"failed"`
	Inflight    int            `json:"inflight"`
	Pending     int            `json:"pending"`
	Reassigned  uint64         `json:"reassigned"`
	Rejoined    uint64         `json:"rejoined"`
	DedupHits   uint64         `json:"dedupHits"`
	CacheServed int            `json:"cacheServed"`
	Workers     []WorkerStatus `json:"workers,omitempty"`
	Journal     journal.Stats  `json:"journal"`
}

// Stats returns a snapshot of cluster progress.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	st := Stats{Cells: len(c.cells), Pending: len(c.pending), Reassigned: c.reassigned,
		Rejoined: c.rejoined, DedupHits: c.dedupHits}
	for i := range c.cells {
		switch c.cells[i].status {
		case cellDone:
			st.Done++
			if c.cells[i].cached {
				st.CacheServed++
			}
		case cellFailed:
			st.Failed++
		case cellAssigned:
			st.Inflight++
		}
	}
	now := time.Now()
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		// w2 before w10: numeric worker IDs sort by length first.
		if len(ids[a]) != len(ids[b]) {
			return len(ids[a]) < len(ids[b])
		}
		return ids[a] < ids[b]
	})
	for _, id := range ids {
		w := c.workers[id]
		st.Workers = append(st.Workers, WorkerStatus{
			ID: w.id, Name: w.name, Dead: w.dead,
			Assigned: len(w.assigned), Completed: w.completed,
			HeartbeatAge: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	c.mu.Unlock()
	st.Journal = c.jr.Stats()
	return st
}

// Close stops the monitor and closes the assignment journal. In-flight
// workers see ErrClosed (HTTP 503) and exit; a later New over the same
// directory resumes from the journaled completions.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	live := 0
	for _, w := range c.workers {
		if !w.dead {
			live++
		}
	}
	obs.Std.ClusterWorkersLive.Add(int64(-live))
	inflight := 0
	for i := range c.cells {
		if c.cells[i].status == cellAssigned {
			inflight++
		}
	}
	obs.Std.ClusterCellsInflight.Add(int64(-inflight))
	c.mu.Unlock()
	close(c.stopMonitor)
	<-c.monitorDone
	return c.jr.Close()
}
