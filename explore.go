package kard

import (
	"fmt"
	"sort"

	"kard/internal/sim"
)

// Additional re-exported synchronization primitives.
type (
	// RWMutex is a simulated reader-writer lock created with
	// System.NewRWMutex.
	RWMutex = sim.RWMutex
	// Cond is a simulated condition variable created with
	// System.NewCond.
	Cond = sim.Cond
)

// NewRWMutex creates a reader-writer lock.
func (s *System) NewRWMutex(name string) *RWMutex { return s.eng.NewRWMutex(name) }

// NewCond creates a condition variable bound to mu.
func (s *System) NewCond(mu *Mutex, name string) *Cond { return s.eng.NewCond(mu, name) }

// ExploreReport aggregates race findings across schedules. ILU detection
// is schedule-sensitive (§3.1): a race manifests only when the threads
// interleave the wrong way, so §5.5 recommends multiple runs. Explore
// automates that: the same program under several seeds, reports merged by
// racy object.
type ExploreReport struct {
	// Seeds is the number of schedules explored.
	Seeds int
	// Findings lists each distinct racy object with how many schedules
	// manifested it.
	Findings []Finding
	// PerSeed maps seed → distinct racy objects found under it.
	PerSeed map[int64]int
}

// Finding is one distinct racy object across the exploration.
type Finding struct {
	// Object is the racy object's allocation site or global name.
	Object string
	// Sections are the conflicting critical-section pairs observed.
	Sections []string
	// Manifestations counts the schedules in which the race appeared.
	Manifestations int
	// Sample is a representative race record.
	Sample Race
}

// Explore runs a program under every seed and merges the race reports.
// build receives a fresh System per seed (create locks and globals there)
// and returns the program's main-thread body. The base configuration's
// Seed field is ignored.
func Explore(cfg Config, seeds []int64, build func(sys *System) func(*Thread)) (*ExploreReport, error) {
	if len(seeds) == 0 {
		seeds = []int64{0, 1, 2, 3, 4, 5, 6, 7}
	}
	type agg struct {
		sections       map[string]bool
		manifestations int
		sample         Race
	}
	merged := map[string]*agg{}
	rep := &ExploreReport{Seeds: len(seeds), PerSeed: make(map[int64]int)}

	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		sys := NewSystem(c)
		body := build(sys)
		if body == nil {
			return nil, fmt.Errorf("kard: Explore build returned a nil body for seed %d", seed)
		}
		r, err := sys.Run(body)
		if err != nil {
			return nil, fmt.Errorf("kard: exploring seed %d: %w", seed, err)
		}
		rep.PerSeed[seed] = r.RacyObjects()
		seen := map[string]bool{}
		for _, race := range r.Races {
			site := race.Object.Site
			a := merged[site]
			if a == nil {
				a = &agg{sections: map[string]bool{}, sample: race}
				merged[site] = a
			}
			a.sections[race.Section+" vs "+race.OtherSection] = true
			if !seen[site] {
				seen[site] = true
				a.manifestations++
			}
		}
	}

	for site, a := range merged {
		var secs []string
		for s := range a.sections {
			secs = append(secs, s)
		}
		sort.Strings(secs)
		rep.Findings = append(rep.Findings, Finding{
			Object:         site,
			Sections:       secs,
			Manifestations: a.manifestations,
			Sample:         a.sample,
		})
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		if rep.Findings[i].Manifestations != rep.Findings[j].Manifestations {
			return rep.Findings[i].Manifestations > rep.Findings[j].Manifestations
		}
		return rep.Findings[i].Object < rep.Findings[j].Object
	})
	return rep, nil
}
