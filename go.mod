module kard

go 1.22
