package kard

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, plus ablations of Kard's design choices. Each
// benchmark runs the relevant simulations at a reduced entry scale (the
// simulated workloads are deterministic, so b.N iterations re-measure the
// same execution) and reports the paper's metric — overhead percentages,
// event counts — via b.ReportMetric. For publication-grade numbers use
// `go run ./cmd/kardbench -all -scale 1`; EXPERIMENTS.md records such a
// run.

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"kard/internal/core"
	"kard/internal/harness"
	"kard/internal/sim"
	"kard/internal/workload"
)

const (
	benchScale = 0.02 // entry scale for benchmarks: fast, ratio-faithful
	benchSeed  = 1
)

func mustRun(b *testing.B, o harness.Options) *harness.Result {
	b.Helper()
	r, err := harness.Run(o)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTable3 regenerates one Table 3 row per sub-benchmark: the four
// configurations of each of the 19 applications, reporting the Alloc,
// Kard, and TSan execution-time overheads and Kard's memory overhead.
func BenchmarkTable3(b *testing.B) {
	for _, suite := range []string{"PARSEC", "SPLASH-2x", "real-world"} {
		for _, name := range workload.BySuite(suite) {
			name := name
			b.Run(name, func(b *testing.B) {
				var alloc, kard, tsan, mem float64
				for i := 0; i < b.N; i++ {
					base := mustRun(b, harness.Options{Workload: name, Mode: harness.ModeBaseline,
						Scale: benchScale, Seed: benchSeed})
					al := mustRun(b, harness.Options{Workload: name, Mode: harness.ModeAlloc,
						Scale: benchScale, Seed: benchSeed})
					kd := mustRun(b, harness.Options{Workload: name, Mode: harness.ModeKard,
						Scale: benchScale, Seed: benchSeed})
					ts := mustRun(b, harness.Options{Workload: name, Mode: harness.ModeTSan,
						Scale: benchScale, Seed: benchSeed})
					alloc = harness.OverheadPct(base, al)
					kard = harness.OverheadPct(base, kd)
					tsan = harness.OverheadPct(base, ts)
					mem = harness.MemOverheadPct(base, kd)
				}
				b.ReportMetric(alloc, "alloc_ovh_%")
				b.ReportMetric(kard, "kard_ovh_%")
				b.ReportMetric(tsan, "tsan_ovh_%")
				b.ReportMetric(mem, "kard_mem_%")
			})
		}
	}
}

// table3Matrix builds the full Table 3 workload × configuration matrix
// (19 applications × 4 modes = 76 cells) at the given entry scale.
func table3Matrix(scale float64) []harness.Spec {
	var specs []harness.Spec
	for _, suite := range []string{"PARSEC", "SPLASH-2x", "real-world"} {
		for _, name := range workload.BySuite(suite) {
			for _, mode := range []harness.Mode{harness.ModeBaseline, harness.ModeAlloc,
				harness.ModeKard, harness.ModeTSan} {
				specs = append(specs, harness.Spec{Options: harness.Options{
					Workload: name, Mode: mode, Scale: scale, Seed: benchSeed,
				}})
			}
		}
	}
	return specs
}

// runMatrixOrFatal runs the matrix and fails the benchmark on any cell
// error.
func runMatrixOrFatal(b *testing.B, jobs int, specs []harness.Spec) {
	b.Helper()
	for _, r := range harness.RunMatrix(jobs, specs) {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}

// BenchmarkRunMatrix measures the parallel evaluation harness over the
// Table 3 matrix per jobs count. The cells are deterministic and
// independent, so on an N-core machine jobs=N approaches an N× wall-clock
// improvement over jobs=1 (the cells are CPU-bound and uneven, so the
// practical ceiling is a bit lower).
func BenchmarkRunMatrix(b *testing.B) {
	specs := table3Matrix(benchScale)
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runMatrixOrFatal(b, jobs, specs)
			}
		})
	}
}

// BenchmarkMatrixSpeedup reports the jobs=4 over jobs=1 wall-clock ratio
// for the Table 3 matrix directly as a speedup_x metric — ≥2× on a 4-core
// machine (≈1× on a single-core one, where there is nothing to fan out
// to).
func BenchmarkMatrixSpeedup(b *testing.B) {
	specs := table3Matrix(benchScale)
	var ratio float64
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		runMatrixOrFatal(b, 1, specs)
		sequential := time.Since(t0)
		t0 = time.Now()
		runMatrixOrFatal(b, 4, specs)
		parallel := time.Since(t0)
		ratio = sequential.Seconds() / parallel.Seconds()
	}
	b.ReportMetric(ratio, "speedup_x")
}

// BenchmarkMatrixCache measures the result cache: a warm run over the
// Table 3 matrix is pure JSON decoding, orders of magnitude cheaper than
// simulating.
func BenchmarkMatrixCache(b *testing.B) {
	specs := table3Matrix(benchScale)
	dir := b.TempDir()
	cache, err := harness.OpenCache(dir)
	if err != nil {
		b.Fatal(err)
	}
	// Populate once, outside the timed region.
	for _, r := range harness.RunMatrixContext(context.Background(), specs,
		harness.MatrixOptions{Jobs: 4, Cache: cache}) {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range harness.RunMatrixContext(context.Background(), specs,
			harness.MatrixOptions{Jobs: 4, Cache: cache}) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			if !r.Cached {
				b.Fatalf("cell %s missed the warm cache", r.Spec.Label())
			}
		}
	}
}

// BenchmarkTable5 regenerates Table 5: memcached under Kard at 4–32
// threads, reporting the key recycling and sharing event counts.
func BenchmarkTable5(b *testing.B) {
	for _, threads := range []int{4, 8, 16, 32} {
		threads := threads
		b.Run(fmt.Sprintf("memcached_t%d", threads), func(b *testing.B) {
			var recycling, sharing, concurrent float64
			for i := 0; i < b.N; i++ {
				r := mustRun(b, harness.Options{Workload: "memcached", Mode: harness.ModeKard,
					Threads: threads, Scale: benchScale, Seed: benchSeed})
				recycling = float64(r.Kard.KeyRecyclingEvents)
				sharing = float64(r.Kard.KeySharingEvents)
				concurrent = float64(r.Stats.MaxConcurrentSections)
			}
			b.ReportMetric(recycling, "recycling_events")
			b.ReportMetric(sharing, "sharing_events")
			b.ReportMetric(concurrent, "max_concurrent_cs")
		})
	}
}

// BenchmarkTable6 regenerates Table 6: races reported on the real-world
// applications by Kard and the TSan comparator, counted by distinct
// object.
func BenchmarkTable6(b *testing.B) {
	for _, name := range workload.BySuite("real-world") {
		name := name
		b.Run(name, func(b *testing.B) {
			var kardRaces, tsanRaces float64
			for i := 0; i < b.N; i++ {
				kd := mustRun(b, harness.Options{Workload: name, Mode: harness.ModeKard,
					Scale: benchScale, Seed: benchSeed})
				ts := mustRun(b, harness.Options{Workload: name, Mode: harness.ModeTSan,
					Scale: benchScale, Seed: benchSeed})
				kardRaces = float64(harness.DistinctRacyObjects(kd))
				tsanRaces = float64(harness.DistinctRacyObjects(ts))
			}
			b.ReportMetric(kardRaces, "kard_races")
			b.ReportMetric(tsanRaces, "tsan_races")
		})
	}
}

// BenchmarkFigure5 regenerates Figure 5: Kard's overhead on the 15
// benchmarks at 8, 16, and 32 threads (geometric mean reported per thread
// count).
func BenchmarkFigure5(b *testing.B) {
	names := append(workload.BySuite("PARSEC"), workload.BySuite("SPLASH-2x")...)
	for _, threads := range []int{8, 16, 32} {
		threads := threads
		b.Run(fmt.Sprintf("t%d", threads), func(b *testing.B) {
			var geo float64
			for i := 0; i < b.N; i++ {
				prod, n := 1.0, 0
				for _, name := range names {
					base := mustRun(b, harness.Options{Workload: name, Mode: harness.ModeBaseline,
						Threads: threads, Scale: 0.01, Seed: benchSeed})
					kd := mustRun(b, harness.Options{Workload: name, Mode: harness.ModeKard,
						Threads: threads, Scale: 0.01, Seed: benchSeed})
					prod *= float64(kd.Stats.ExecTime) / float64(base.Stats.ExecTime)
					n++
				}
				geo = (math.Pow(prod, 1/float64(n)) - 1) * 100
			}
			b.ReportMetric(geo, "kard_geomean_ovh_%")
		})
	}
}

// BenchmarkNginxSweep regenerates the §7.2 file-size sweep: Kard's
// per-request overhead at 128 kB and 1 MB responses.
func BenchmarkNginxSweep(b *testing.B) {
	for _, kb := range []int{128, 256, 512, 1024} {
		kb := kb
		b.Run(fmt.Sprintf("%dkB", kb), func(b *testing.B) {
			var ovh float64
			for i := 0; i < b.N; i++ {
				base, err := harness.RunWorkload(harness.Options{Mode: harness.ModeBaseline,
					Scale: benchScale, Seed: benchSeed}, workload.NginxSized(kb))
				if err != nil {
					b.Fatal(err)
				}
				kd, err := harness.RunWorkload(harness.Options{Mode: harness.ModeKard,
					Scale: benchScale, Seed: benchSeed}, workload.NginxSized(kb))
				if err != nil {
					b.Fatal(err)
				}
				ovh = harness.OverheadPct(base, kd)
			}
			b.ReportMetric(ovh, "kard_ovh_%")
		})
	}
}

// BenchmarkILUCorpus regenerates the §3.1 study: the ILU share of
// TSan-style reports over the fixed-race corpus.
func BenchmarkILUCorpus(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		ts := mustRun(b, harness.Options{Workload: "racecorpus", Mode: harness.ModeTSan,
			Threads: 2, Scale: 1, Seed: benchSeed})
		ilu, non := 0, 0
		seen := map[string]bool{}
		for _, r := range ts.Stats.Races {
			if seen[r.Object.Site] {
				continue
			}
			seen[r.Object.Site] = true
			if r.ILU {
				ilu++
			} else {
				non++
			}
		}
		if ilu+non > 0 {
			share = 100 * float64(ilu) / float64(ilu+non)
		}
	}
	b.ReportMetric(share, "ilu_share_%")
}

// BenchmarkAblationProactive measures what proactive key acquisition
// (§5.4) buys: fluidanimate's Kard overhead with and without it.
func BenchmarkAblationProactive(b *testing.B) {
	for _, on := range []bool{true, false} {
		on := on
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var ovh, faults float64
			for i := 0; i < b.N; i++ {
				base := mustRun(b, harness.Options{Workload: "fluidanimate", Mode: harness.ModeBaseline,
					Scale: 0.01, Seed: benchSeed})
				kd := mustRun(b, harness.Options{Workload: "fluidanimate", Mode: harness.ModeKard,
					Scale: 0.01, Seed: benchSeed,
					Kard: kardOpts(!on, false)})
				ovh = harness.OverheadPct(base, kd)
				faults = float64(kd.Kard.Faults)
			}
			b.ReportMetric(ovh, "kard_ovh_%")
			b.ReportMetric(faults, "faults")
		})
	}
}

// BenchmarkAblationInterleaving measures protection interleaving's (§5.5)
// effect on the different-offset false-positive scenario (Table 4): with
// interleaving the spurious report is pruned; without it, it survives —
// like pigz's small-section case where interleaving cannot run at all.
func BenchmarkAblationInterleaving(b *testing.B) {
	scenario := func(disable bool) (races, pruned float64) {
		sys := NewSystem(Config{Detector: DetectorKard, Seed: benchSeed,
			Kard: KardOptions{DisableInterleaving: disable}})
		la, lb := sys.NewMutex("la"), sys.NewMutex("lb")
		bar := sys.NewBarrier(2)
		rep, err := sys.Run(func(m *Thread) {
			o := m.Malloc(256, "buf")
			t1 := m.Go("t1", func(w *Thread) {
				w.Lock(la, "sa")
				w.Write(o, 0, 8, "w1")
				w.Barrier(bar)
				w.Compute(100000)
				w.Write(o, 0, 8, "w1b")
				w.Unlock(la)
			})
			t2 := m.Go("t2", func(w *Thread) {
				w.Barrier(bar)
				w.Lock(lb, "sb")
				w.Write(o, 128, 8, "w2")
				w.Compute(200000)
				w.Unlock(lb)
			})
			m.Join(t1)
			m.Join(t2)
		})
		if err != nil {
			b.Fatal(err)
		}
		return float64(rep.RacyObjects()), float64(rep.Kard.PrunedSpurious)
	}
	for _, on := range []bool{true, false} {
		on := on
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var races, pruned float64
			for i := 0; i < b.N; i++ {
				races, pruned = scenario(!on)
			}
			b.ReportMetric(races, "reported_races")
			b.ReportMetric(pruned, "pruned_spurious")
		})
	}
}

// BenchmarkAblationAllocatorRecycle measures virtual-page recycling (§6
// future work) on the allocation-heavy NGINX model.
func BenchmarkAblationAllocatorRecycle(b *testing.B) {
	b.Run("noRecycle", func(b *testing.B) { benchNginxAlloc(b, false) })
	b.Run("recycle", func(b *testing.B) { benchNginxAlloc(b, true) })
}

func benchNginxAlloc(b *testing.B, recycle bool) {
	var ovh, mem float64
	for i := 0; i < b.N; i++ {
		base := mustRun(b, harness.Options{Workload: "nginx", Mode: harness.ModeBaseline,
			Scale: benchScale, Seed: benchSeed})
		w, err := workload.New("nginx")
		if err != nil {
			b.Fatal(err)
		}
		rep, err := runRecycling(w, recycle)
		if err != nil {
			b.Fatal(err)
		}
		ovh = (float64(rep.ExecTime)/float64(base.Stats.ExecTime) - 1) * 100
		mem = (float64(rep.PeakRSS)/float64(base.Stats.PeakRSS) - 1) * 100
	}
	b.ReportMetric(ovh, "alloc_ovh_%")
	b.ReportMetric(mem, "mem_ovh_%")
}

// kardOpts builds detector options for the ablation benchmarks.
func kardOpts(disableProactive, disableInterleaving bool) core.Options {
	return core.Options{DisableProactive: disableProactive, DisableInterleaving: disableInterleaving}
}

// recycleResult is the subset of stats the allocator ablation reports.
type recycleResult struct {
	ExecTime uint64
	PeakRSS  uint64
}

// runRecycling runs a workload on the unique-page allocator with
// virtual-page recycling toggled (the §6 future-work ablation), without
// detection so the allocator effect is isolated.
func runRecycling(w workload.Workload, recycle bool) (*recycleResult, error) {
	e := sim.New(sim.Config{Seed: benchSeed, UniquePageAllocator: true, AllocRecycle: recycle}, nil)
	w.Prepare(e)
	st, err := e.Run(func(m *sim.Thread) { w.Body(m, 4, benchScale) })
	if err != nil {
		return nil, err
	}
	return &recycleResult{ExecTime: uint64(st.ExecTime), PeakRSS: st.PeakRSS}, nil
}

// BenchmarkEngineThroughput measures the raw simulator: operations per
// second through the deterministic scheduler.
func BenchmarkEngineThroughput(b *testing.B) {
	sys := NewSystem(Config{Detector: DetectorNone, Seed: 1})
	mu := sys.NewMutex("m")
	b.ResetTimer()
	_, err := sys.Run(func(m *Thread) {
		o := m.Malloc(4096, "buf")
		for i := 0; i < b.N; i++ {
			m.Lock(mu, "s")
			m.Write(o, 0, 64, "w")
			m.Unlock(mu)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationSoftwareFallback measures the §8 software fallback on
// memcached (the key-exhaustion application): sharing events drop to zero
// at the cost of software traps.
func BenchmarkAblationSoftwareFallback(b *testing.B) {
	for _, on := range []bool{false, true} {
		on := on
		name := "hardware-sharing"
		if on {
			name = "software-fallback"
		}
		b.Run(name, func(b *testing.B) {
			var ovh, sharing, soft float64
			for i := 0; i < b.N; i++ {
				base := mustRun(b, harness.Options{Workload: "memcached", Mode: harness.ModeBaseline,
					Scale: benchScale, Seed: benchSeed})
				kd := mustRun(b, harness.Options{Workload: "memcached", Mode: harness.ModeKard,
					Scale: benchScale, Seed: benchSeed,
					Kard: core.Options{SoftwareFallback: on}})
				ovh = harness.OverheadPct(base, kd)
				sharing = float64(kd.Kard.KeySharingEvents)
				soft = float64(kd.Kard.SoftwareFaults)
			}
			b.ReportMetric(ovh, "kard_ovh_%")
			b.ReportMetric(sharing, "sharing_events")
			b.ReportMetric(soft, "software_faults")
		})
	}
}
