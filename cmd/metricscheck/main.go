// Command metricscheck validates a Prometheus /metrics endpoint the way
// a scraper would: it fetches the exposition twice and fails unless both
// scrapes parse, no metric family is declared twice, every sample belongs
// to a declared family, and every counter is monotonic across the two
// scrapes. The metrics-smoke make target points it at a live kardd.
//
// Usage:
//
//	metricscheck -url http://127.0.0.1:7707/metrics -interval 500ms
//
// Exit status 0 means both scrapes passed every check; any violation is
// reported to stderr and exits 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:7707/metrics", "metrics endpoint to scrape")
		interval = flag.Duration("interval", 500*time.Millisecond, "pause between the two scrapes")
		wait     = flag.Duration("wait", 10*time.Second, "how long to retry the first scrape while the daemon starts")
	)
	flag.Parse()

	first, err := scrapeRetry(*url, *wait)
	if err != nil {
		fatal(err)
	}
	s1, err := parse(first)
	if err != nil {
		fatal(fmt.Errorf("first scrape: %w", err))
	}
	time.Sleep(*interval)
	second, err := scrape(*url)
	if err != nil {
		fatal(err)
	}
	s2, err := parse(second)
	if err != nil {
		fatal(fmt.Errorf("second scrape: %w", err))
	}

	var violations []string
	for name, v1 := range s1.samples {
		fam := s1.family(name)
		if s1.types[fam] != "counter" {
			continue
		}
		v2, ok := s2.samples[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("counter %s vanished between scrapes", name))
			continue
		}
		if v2 < v1 {
			violations = append(violations, fmt.Sprintf("counter %s went backwards: %g -> %g", name, v1, v2))
		}
	}
	sort.Strings(violations)
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "metricscheck:", v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
	fmt.Printf("metricscheck: ok, %d families, %d series, counters monotonic across %v\n",
		len(s1.types), len(s2.samples), *interval)
}

// scrapeRetry polls the endpoint until it answers or the wait budget runs
// out — the daemon may still be binding its listener when we start.
func scrapeRetry(url string, wait time.Duration) (string, error) {
	deadline := time.Now().Add(wait)
	for {
		body, err := scrape(url)
		if err == nil {
			return body, nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("endpoint never came up: %w", err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func scrape(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return "", fmt.Errorf("GET %s: Content-Type %q, want text/plain exposition", url, ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// scrapeState is one parsed exposition: family -> type, and full series
// id (name + labels) -> value.
type scrapeState struct {
	types   map[string]string
	samples map[string]float64
}

// family maps a series id back to its declaring family, peeling the
// histogram suffixes (_bucket/_sum/_count attach to the family name).
func (s *scrapeState) family(series string) string {
	name := series
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	if _, ok := s.types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suffix); base != name {
			if _, ok := s.types[base]; ok {
				return base
			}
		}
	}
	return name
}

// parse validates one exposition body: every line is a comment or a
// well-formed sample, TYPE is declared at most once per family, and every
// sample's family is declared.
func parse(body string) (*scrapeState, error) {
	s := &scrapeState{types: map[string]string{}, samples: map[string]float64{}}
	for i, line := range strings.Split(body, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE comment %q", i+1, line)
			}
			name, kind := fields[2], fields[3]
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", i+1, kind)
			}
			if _, dup := s.types[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate family %s", i+1, name)
			}
			s.types[name] = kind
		case strings.HasPrefix(line, "#"):
		default:
			// Sample: metric-id then value, separated by the last space
			// (label values may contain escaped spaces inside quotes, but
			// never an unescaped one outside them).
			cut := strings.LastIndexByte(line, ' ')
			if cut <= 0 {
				return nil, fmt.Errorf("line %d: malformed sample %q", i+1, line)
			}
			series, valueText := line[:cut], line[cut+1:]
			value, err := strconv.ParseFloat(valueText, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad sample value %q: %v", i+1, valueText, err)
			}
			fam := s.family(series)
			if _, ok := s.types[fam]; !ok {
				return nil, fmt.Errorf("line %d: sample %s has no # TYPE declaration", i+1, series)
			}
			if _, dup := s.samples[series]; dup {
				return nil, fmt.Errorf("line %d: duplicate series %s", i+1, series)
			}
			s.samples[series] = value
		}
	}
	if len(s.samples) == 0 {
		return nil, fmt.Errorf("exposition has no samples")
	}
	return s, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metricscheck:", err)
	os.Exit(1)
}
