// Command metricscheck validates a Prometheus /metrics endpoint the way
// a scraper would: it fetches the exposition twice and fails unless both
// scrapes parse, no metric family is declared twice, every sample belongs
// to a declared family, and every counter is monotonic across the two
// scrapes. The metrics-smoke make target points it at a live kardd.
//
// Usage:
//
//	metricscheck -url http://127.0.0.1:7707/metrics -interval 500ms
//	metricscheck -trace trace.json
//	metricscheck -url http://127.0.0.1:7707/metrics -trace http://127.0.0.1:7707/debug/trace
//
// -trace validates a Chrome trace-event export (a file, or a live
// /debug/trace endpoint): the body must be well-formed JSON, every 'E'
// event must close a matching 'B' on its (pid, tid) row, and every row's
// timestamps must be monotonically non-decreasing. With only -trace, the
// metrics scrapes are skipped; with both flags, the scrape additionally
// requires the kard_trace_* counter families to be present.
//
// Exit status 0 means every requested check passed; any violation is
// reported to stderr and exits 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:7707/metrics", "metrics endpoint to scrape")
		interval = flag.Duration("interval", 500*time.Millisecond, "pause between the two scrapes")
		wait     = flag.Duration("wait", 10*time.Second, "how long to retry the first scrape while the daemon starts")
		traceSrc = flag.String("trace", "", "validate a Chrome trace export: a JSON file path or a /debug/trace URL")
	)
	flag.Parse()

	urlSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "url" {
			urlSet = true
		}
	})

	if *traceSrc != "" && !urlSet {
		// Trace-only invocation: validate and exit.
		if err := checkTrace(*traceSrc, *wait); err != nil {
			fatal(err)
		}
		return
	}

	first, err := scrapeRetry(*url, *wait)
	if err != nil {
		fatal(err)
	}
	s1, err := parse(first)
	if err != nil {
		fatal(fmt.Errorf("first scrape: %w", err))
	}
	time.Sleep(*interval)
	second, err := scrape(*url)
	if err != nil {
		fatal(err)
	}
	s2, err := parse(second)
	if err != nil {
		fatal(fmt.Errorf("second scrape: %w", err))
	}

	var violations []string
	for name, v1 := range s1.samples {
		fam := s1.family(name)
		if s1.types[fam] != "counter" {
			continue
		}
		v2, ok := s2.samples[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("counter %s vanished between scrapes", name))
			continue
		}
		if v2 < v1 {
			violations = append(violations, fmt.Sprintf("counter %s went backwards: %g -> %g", name, v1, v2))
		}
	}
	if *traceSrc != "" {
		// With both flags, the trace is fetched after the scrapes so the
		// daemon is known to be up (scrapeRetry already waited for it).
		if err := checkTrace(*traceSrc, *wait); err != nil {
			fatal(err)
		}
		// A traced daemon must export the tracer's own counters; their
		// monotonicity is covered by the generic counter check above.
		for _, fam := range []string{
			"kard_trace_spans_total", "kard_trace_events_total",
			"kard_trace_events_dropped_total", "kard_trace_exports_total",
		} {
			if s2.types[fam] != "counter" {
				violations = append(violations, fmt.Sprintf("traced daemon exports no %s counter", fam))
			}
		}
	}
	sort.Strings(violations)
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "metricscheck:", v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
	fmt.Printf("metricscheck: ok, %d families, %d series, counters monotonic across %v\n",
		len(s1.types), len(s2.samples), *interval)
}

// scrapeRetry polls the endpoint until it answers or the wait budget runs
// out — the daemon may still be binding its listener when we start.
func scrapeRetry(url string, wait time.Duration) (string, error) {
	deadline := time.Now().Add(wait)
	for {
		body, err := scrape(url)
		if err == nil {
			return body, nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("endpoint never came up: %w", err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func scrape(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return "", fmt.Errorf("GET %s: Content-Type %q, want text/plain exposition", url, ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// scrapeState is one parsed exposition: family -> type, and full series
// id (name + labels) -> value.
type scrapeState struct {
	types   map[string]string
	samples map[string]float64
}

// family maps a series id back to its declaring family, peeling the
// histogram suffixes (_bucket/_sum/_count attach to the family name).
func (s *scrapeState) family(series string) string {
	name := series
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	if _, ok := s.types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suffix); base != name {
			if _, ok := s.types[base]; ok {
				return base
			}
		}
	}
	return name
}

// parse validates one exposition body: every line is a comment or a
// well-formed sample, TYPE is declared at most once per family, and every
// sample's family is declared.
func parse(body string) (*scrapeState, error) {
	s := &scrapeState{types: map[string]string{}, samples: map[string]float64{}}
	for i, line := range strings.Split(body, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE comment %q", i+1, line)
			}
			name, kind := fields[2], fields[3]
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", i+1, kind)
			}
			if _, dup := s.types[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate family %s", i+1, name)
			}
			s.types[name] = kind
		case strings.HasPrefix(line, "#"):
		default:
			// Sample: metric-id then value, separated by the last space
			// (label values may contain escaped spaces inside quotes, but
			// never an unescaped one outside them).
			cut := strings.LastIndexByte(line, ' ')
			if cut <= 0 {
				return nil, fmt.Errorf("line %d: malformed sample %q", i+1, line)
			}
			series, valueText := line[:cut], line[cut+1:]
			value, err := strconv.ParseFloat(valueText, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad sample value %q: %v", i+1, valueText, err)
			}
			fam := s.family(series)
			if _, ok := s.types[fam]; !ok {
				return nil, fmt.Errorf("line %d: sample %s has no # TYPE declaration", i+1, series)
			}
			if _, dup := s.samples[series]; dup {
				return nil, fmt.Errorf("line %d: duplicate series %s", i+1, series)
			}
			s.samples[series] = value
		}
	}
	if len(s.samples) == 0 {
		return nil, fmt.Errorf("exposition has no samples")
	}
	return s, nil
}

// checkTrace validates one Chrome trace-event export, read from a file
// or fetched from a /debug/trace endpoint (retrying up to wait while the
// daemon starts).
func checkTrace(src string, wait time.Duration) error {
	var data []byte
	var err error
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		data, err = fetchRetry(src, wait)
	} else {
		data, err = os.ReadFile(src)
	}
	if err != nil {
		return err
	}
	events, open, err := validateTrace(data)
	if err != nil {
		return fmt.Errorf("trace %s: %w", src, err)
	}
	note := ""
	if open > 0 {
		// A live daemon exports mid-run, so still-open spans are fine;
		// they'd be a bug in a completed campaign's export.
		note = fmt.Sprintf(" (%d spans still open)", open)
	}
	fmt.Printf("metricscheck: trace ok, %d events, B/E matched, timestamps monotonic per row%s\n",
		events, note)
	return nil
}

// fetchRetry GETs a URL, retrying while the daemon starts.
func fetchRetry(url string, wait time.Duration) ([]byte, error) {
	deadline := time.Now().Add(wait)
	for {
		data, err := fetch(url)
		if err == nil {
			return data, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// traceEvent is the subset of the Chrome trace-event shape the validator
// inspects.
type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	Ts   int64  `json:"ts"`
}

// validateTrace checks the three structural invariants every export must
// hold: well-formed JSON, every 'E' closes a 'B' of the same name open on
// its (pid, tid) row, and each row's timestamps never go backwards. It
// returns the event count and how many spans were left open (legitimate
// for a live mid-run export, suspect for a finished campaign).
func validateTrace(data []byte) (events, open int, err error) {
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, 0, fmt.Errorf("not valid trace JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return 0, 0, fmt.Errorf("export has no events")
	}
	type row struct{ pid, tid int }
	stacks := map[row][]string{}
	lastTs := map[row]int64{}
	for i, e := range doc.TraceEvents {
		r := row{e.Pid, e.Tid}
		if e.Ph != "M" { // metadata carries ts 0 regardless of position
			if prev, ok := lastTs[r]; ok && e.Ts < prev {
				return 0, 0, fmt.Errorf("event %d (%s): ts went backwards on pid %d tid %d: %d -> %d",
					i, e.Name, e.Pid, e.Tid, prev, e.Ts)
			}
			lastTs[r] = e.Ts
		}
		switch e.Ph {
		case "B":
			stacks[r] = append(stacks[r], e.Name)
		case "E":
			st := stacks[r]
			if len(st) == 0 {
				return 0, 0, fmt.Errorf("event %d: 'E' %q on pid %d tid %d closes no open span",
					i, e.Name, e.Pid, e.Tid)
			}
			if top := st[len(st)-1]; top != e.Name {
				return 0, 0, fmt.Errorf("event %d: 'E' %q on pid %d tid %d, but innermost open span is %q",
					i, e.Name, e.Pid, e.Tid, top)
			}
			stacks[r] = st[:len(st)-1]
		case "i", "M":
		default:
			return 0, 0, fmt.Errorf("event %d: unknown phase %q", i, e.Ph)
		}
	}
	for _, st := range stacks {
		open += len(st)
	}
	return len(doc.TraceEvents), open, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metricscheck:", err)
	os.Exit(1)
}
