// Command kardd is the long-running detection daemon: it accepts
// detection jobs (workload spec + configuration) on a bounded queue,
// executes them on the parallel evaluation harness, and survives crashes,
// overload, and operators.
//
// Usage:
//
//	kardd -dir state -submit jobs.json -exit-when-idle -verdicts out.json
//	kardd -dir state -listen 127.0.0.1:7707
//	kardd -cluster 2 -dir state -submit jobs.json -verdicts out.json
//	kardd -cluster 2 -supervise -listen 127.0.0.1:7707 -dir state -submit jobs.json
//	kardd -worker -coordinator http://host:7707 -store state/store
//	kardd -worker -coordinator http://host:7707 -chaos-net -chaos-seed 7
//
// The cluster forms are the sharded cluster (DESIGN.md §9,
// OPERATIONS.md): -cluster N coordinates the job file's matrix across N
// local subprocess workers (plus any remote `kardd -worker` processes
// that join the coordinator's HTTP endpoint), journaling every
// assignment, reassigning cells from dead workers, and sharing one
// content-addressed artifact store so no cell is ever computed twice.
// Cluster verdicts are byte-identical to a single-process run of the
// same job file.
//
// Every admission and every finished cell is journaled (fsync'd,
// checksummed) under -dir before it is acknowledged, so a SIGKILL mid-run
// loses nothing: restarting kardd over the same -dir replays the journal,
// skips completed cells, resumes interrupted jobs, and produces verdicts
// byte-identical to an uninterrupted run. SIGTERM (and SIGINT) drains
// gracefully — admission stops, in-flight cells finish or are
// checkpointed, the journal is flushed — and kardd exits 0.
//
// Job files are JSON arrays of job specs:
//
//	[{"workload": "memcached", "modes": ["kard", "tsan"], "seeds": [1, 2]}]
//
// Jobs already journaled under the same ID (IDs default to a content
// hash) are skipped on resubmission, so rerunning kardd with the same
// -submit file after a crash is idempotent.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kard/internal/diskfault"
	"kard/internal/faultinject"
	"kard/internal/report"
	"kard/internal/service"
	"kard/internal/trace"
)

func main() {
	var (
		dir          = flag.String("dir", ".kardd", "state directory (journal + result cache)")
		listen       = flag.String("listen", "", "serve the HTTP API on this address (empty = disabled)")
		submit       = flag.String("submit", "", "admit the jobs in this JSON file at startup")
		queue        = flag.Int("queue", 64, "bounded admission queue depth; submissions beyond it are rejected, never blocked")
		workers      = flag.Int("workers", 2, "concurrent jobs")
		cellWorkers  = flag.Int("cell-workers", 0, "parallel cells per job (0 = 1)")
		cellTimeout  = flag.Duration("cell-timeout", 2*time.Minute, "default per-cell watchdog")
		maxFrames    = flag.Uint64("max-frames", 0, "default per-cell simulated frame budget (0 = unlimited)")
		maxRWKeys    = flag.Int("max-rw-keys", 0, "default per-cell hardware pkey budget (0 = all 13)")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "how long a SIGTERM drain may take before in-flight jobs are checkpointed instead")
		exitIdle     = flag.Bool("exit-when-idle", false, "drain and exit 0 once every admitted job has settled (smoke/CI mode)")
		verdicts     = flag.String("verdicts", "", "write canonical verdict JSON for completed jobs here on shutdown")
		printReport  = flag.Bool("report", false, "print the journal-backed job report on shutdown")

		// Cluster modes (DESIGN.md §9, OPERATIONS.md).
		clusterN     = flag.Int("cluster", 0, "coordinator mode: shard -submit's matrix across N local subprocess workers (0 = single-process service)")
		worker       = flag.Bool("worker", false, "worker mode: join a coordinator and execute leased cells")
		coordinator  = flag.String("coordinator", "", "coordinator URL for -worker (e.g. http://127.0.0.1:7707)")
		storeDir     = flag.String("store", "", "shared artifact store directory (coordinator default: <dir>/store)")
		workerName   = flag.String("worker-name", "", "operator-facing worker name (default host:pid)")
		hbTimeout    = flag.Duration("hb-timeout", 5*time.Second, "declare a worker dead after this long without a heartbeat")
		cellDeadline = flag.Duration("cell-deadline", 5*time.Minute, "revoke a cell assignment older than this (stall guard)")
		maxAttempts  = flag.Int("max-attempts", 3, "assignment attempts per cell before it settles as failed")
		supervise    = flag.Bool("supervise", false, "with -cluster: run the coordinator as a supervised child and restart it over the same journal after an abnormal exit (requires a fixed -listen address)")
		chaosNet     = flag.Bool("chaos-net", false, "worker mode: inject the seeded default network fault plan (drops, delays, duplicates, lost responses, partition bursts) into every coordinator RPC")
		chaosDisk    = flag.Bool("chaos-disk", false, "inject the seeded default disk fault plan (short writes, ENOSPC, fsync EIO, read bit flips, lost renames) into journal and cache I/O (DESIGN.md §11)")
		chaosSeed    = flag.Int64("chaos-seed", 1, "seed for the -chaos-net / -chaos-disk fault schedules (same seed = same schedule)")
		compactEvery = flag.Int("compact-every", 0, "snapshot and truncate the WAL after this many appends (0 = default cadence, negative = never compact)")
		traceOn      = flag.Bool("trace", false, "record structured spans (job lifecycle, journal fsyncs, cluster RPCs) and serve Chrome trace-event JSON at GET /debug/trace")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "kardd: "+format+"\n", args...)
	}

	if *chaosDisk {
		diskfault.Arm(*chaosSeed, faultinject.DefaultDiskPlan())
		logf("chaos-disk enabled (seed %d): injecting the default disk fault plan into journal and cache I/O", *chaosSeed)
		defer func() {
			st := diskfault.Active().Stats()
			logf("diskfault stats: injected=%d by-site=%v", st.Injected, st.BySite)
		}()
	}

	if *worker || *clusterN > 0 {
		cf := clusterFlags{
			dir: *dir, submit: *submit, listen: *listen, verdicts: *verdicts,
			storeDir: *storeDir, workers: *clusterN,
			coordinator: *coordinator, workerName: *workerName,
			hbTimeout: *hbTimeout, cellDeadline: *cellDeadline, maxAttempts: *maxAttempts,
			cellTimeout: *cellTimeout, maxFrames: *maxFrames, maxRWKeys: *maxRWKeys,
			supervise: *supervise, chaosNet: *chaosNet, chaosDisk: *chaosDisk,
			chaosSeed: *chaosSeed, compactEvery: *compactEvery, traceOn: *traceOn,
		}
		switch {
		case *worker:
			runWorkerMode(cf, logf)
		case cf.supervise && os.Getenv("KARDD_SUPERVISE_CHILD") == "":
			runSupervisor(cf, logf)
		default:
			runClusterMode(cf, logf)
		}
		return
	}
	// The daemon is a wall-clock layer: the fixed seed only keys span IDs
	// (timestamps come from Tracer.Now), and the export is served live at
	// /debug/trace rather than written at exit.
	var tracer *trace.Tracer
	if *traceOn {
		tracer = trace.NewTracer(1, "kardd", 0)
	}
	srv, err := service.Open(service.Config{
		Dir:          *dir,
		QueueDepth:   *queue,
		Workers:      *workers,
		CellWorkers:  *cellWorkers,
		CompactEvery: *compactEvery,
		Trace:        tracer,
		Defaults: service.ServerDefaults{
			CellTimeout: *cellTimeout,
			MaxFrames:   *maxFrames,
			MaxRWKeys:   *maxRWKeys,
		},
		Logf: logf,
		// A poisoned journal (first fsync failure) is fail-stop: exit
		// abnormally so a supervisor restarts us over the intact prefix
		// instead of acknowledging work that was never durable.
		OnStorageFatal: func(err error) {
			logf("FATAL storage error: %v; exiting so a supervisor can restart over the intact journal", err)
			os.Exit(3)
		},
	})
	if err != nil {
		fatal(err)
	}

	if *submit != "" {
		if err := submitFile(srv, *submit, logf); err != nil {
			fatal(err)
		}
	}

	if *listen != "" {
		httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}
		go func() {
			logf("listening on %s", *listen)
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fatal(err)
			}
		}()
		defer httpSrv.Close()
	}

	// SIGTERM and SIGINT drain gracefully; -exit-when-idle drains as
	// soon as the queue settles.
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGTERM, syscall.SIGINT)
	idleC := make(chan struct{})
	if *exitIdle {
		go func() {
			_ = srv.WaitIdle(context.Background())
			close(idleC)
		}()
	}
	select {
	case sig := <-sigC:
		logf("received %v, draining (timeout %v)", sig, *drainTimeout)
	case <-idleC:
		logf("idle, draining")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		logf("forced drain: %v (in-flight work is checkpointed in the journal)", err)
	} else {
		logf("drained cleanly")
	}

	if *verdicts != "" {
		if err := writeVerdicts(srv, *verdicts); err != nil {
			fatal(err)
		}
		logf("wrote verdicts to %s", *verdicts)
	}
	if *printReport {
		if err := report.Journal(os.Stdout, *dir); err != nil {
			fatal(err)
		}
	}
	// A drain — even a forced one — is a controlled shutdown: exit 0.
}

// submitFile admits every job spec in a JSON file, treating duplicates
// (already journaled, e.g. before a crash) as fine and counting
// rejections.
func submitFile(srv *service.Server, path string, logf func(string, ...any)) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var specs []service.JobSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return fmt.Errorf("kardd: parsing %s: %w", path, err)
	}
	admitted, duplicate, rejected := 0, 0, 0
	for _, spec := range specs {
		id, err := srv.Submit(spec)
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, service.ErrDuplicate):
			duplicate++
		default:
			rejected++
			logf("job %q rejected: %v", id, err)
		}
	}
	logf("submitted %s: %d admitted, %d already journaled, %d rejected",
		path, admitted, duplicate, rejected)
	return nil
}

// writeVerdicts renders the completed jobs' canonical verdicts, sorted
// by job ID — the artifact the kill-and-recover smoke test diffs against
// an uninterrupted run.
func writeVerdicts(srv *service.Server, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, v := range srv.Verdicts() {
		f.Write(v.Canonical())
		f.Write([]byte("\n"))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kardd:", err)
	os.Exit(1)
}
