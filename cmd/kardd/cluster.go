package main

// Cluster and worker modes (DESIGN.md §9, OPERATIONS.md):
//
//	kardd -cluster 2 -dir state -submit jobs.json -verdicts out.json
//	kardd -worker -coordinator http://host:7707 -store state/store
//
// -cluster N turns kardd into a coordinator: the job file's specs are
// normalized exactly as service admission would, expanded to their
// matrix cells, and sharded across workers; N local subprocess workers
// (this same binary with -worker) are spawned against a shared artifact
// store, and any number of remote workers may join the same HTTP
// endpoint while the run is live. Verdicts are written in the same
// canonical form as single-process mode, and are byte-identical to it.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"syscall"
	"time"

	"kard/internal/cluster"
	"kard/internal/cluster/netfault"
	"kard/internal/faultinject"
	"kard/internal/harness"
	"kard/internal/obs"
	"kard/internal/service"
	"kard/internal/trace"
)

// clusterFlags groups the coordinator/worker flag values main passes in.
type clusterFlags struct {
	dir          string
	submit       string
	listen       string
	verdicts     string
	storeDir     string
	workers      int
	coordinator  string
	workerName   string
	hbTimeout    time.Duration
	cellDeadline time.Duration
	maxAttempts  int
	cellTimeout  time.Duration
	maxFrames    uint64
	maxRWKeys    int
	supervise    bool
	chaosNet     bool
	chaosDisk    bool
	chaosSeed    int64
	compactEvery int
	traceOn      bool
}

// runWorkerMode is `kardd -worker`: join the coordinator, drain leases
// until the matrix is done, exit 0.
func runWorkerMode(f clusterFlags, logf func(string, ...any)) {
	if f.coordinator == "" {
		fatal(fmt.Errorf("kardd: -worker requires -coordinator URL"))
	}
	name := f.workerName
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	var store *harness.Cache
	if f.storeDir != "" {
		var err error
		if store, err = harness.OpenCache(f.storeDir); err != nil {
			fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	opts := cluster.ClientOptions{Logf: logf}
	if f.traceOn {
		// The worker exports nothing itself; its tracer exists to mint
		// span IDs that ride the RPC headers, so the coordinator's
		// /debug/trace shows every server span stitched to the worker
		// that issued it. Scoping by worker name keeps IDs distinct
		// across workers.
		wtr := trace.NewTracer(1, "kardd-worker/"+name, 0)
		opts.Trace = wtr.Track(4, 1, name, 0)
	}
	var chaos *netfault.Transport
	if f.chaosNet {
		chaos = netfault.New(nil, f.chaosSeed, faultinject.DefaultNetPlan())
		opts.Transport = chaos
		logf("worker %s: chaos-net enabled (seed %d): injecting the default net fault plan", name, f.chaosSeed)
		defer func() {
			st := chaos.Stats()
			logf("worker %s: netfault stats: injected=%d by-site=%v", name, st.Injected, st.BySite)
		}()
	}
	cl, err := cluster.DialWith(ctx, f.coordinator, name, opts)
	if err != nil {
		fatal(err)
	}
	logf("worker %s joined %s as %s", name, f.coordinator, cl.WorkerID())
	if err := cluster.RunWorker(ctx, cl, cluster.WorkerOptions{Store: store, Logf: logf}); err != nil {
		if errors.Is(err, context.Canceled) {
			logf("worker %s stopping on signal", cl.WorkerID())
			return
		}
		fatal(err)
	}
	logf("worker %s done", cl.WorkerID())
}

// runSupervisor is `kardd -cluster N -supervise`: re-exec this binary as
// the coordinator child (same flags, marked by KARDD_SUPERVISE_CHILD) and
// restart it over the same journal after an abnormal exit — the process
// half of coordinator crash-restart survival. Workers are spawned by the
// first incarnation only; after a crash they are orphaned but alive,
// retrying RPCs against the fixed -listen address until the restarted
// coordinator re-admits them under the rejoin grace (DESIGN.md §9).
func runSupervisor(f clusterFlags, logf func(string, ...any)) {
	if f.listen == "" {
		fatal(fmt.Errorf("kardd: -supervise requires a fixed -listen address so workers can find the restarted coordinator"))
	}
	exe, err := os.Executable()
	if err != nil {
		fatal(fmt.Errorf("kardd: locating own binary for -supervise: %w", err))
	}
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGTERM, syscall.SIGINT)

	const maxRestarts = 10
	for incarnation := 0; ; incarnation++ {
		cmd := exec.Command(exe, os.Args[1:]...)
		cmd.Env = append(os.Environ(),
			"KARDD_SUPERVISE_CHILD=1",
			fmt.Sprintf("KARDD_INCARNATION=%d", incarnation))
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fatal(fmt.Errorf("kardd: supervise: %w", err))
		}
		logf("supervisor: coordinator child pid %d (incarnation %d)", cmd.Process.Pid, incarnation)
		waitC := make(chan error, 1)
		go func() { waitC <- cmd.Wait() }()
		select {
		case sig := <-sigC:
			logf("supervisor: received %v, terminating coordinator child", sig)
			_ = cmd.Process.Signal(syscall.SIGTERM)
			if err := <-waitC; err != nil {
				os.Exit(1)
			}
			return
		case err := <-waitC:
			if err == nil {
				logf("supervisor: coordinator child exited cleanly")
				return
			}
			if incarnation+1 >= maxRestarts {
				fatal(fmt.Errorf("kardd: supervise: coordinator crashed %d times, giving up: %w", incarnation+1, err))
			}
			logf("supervisor: coordinator child exited abnormally (%v); restarting over the same journal", err)
			time.Sleep(500 * time.Millisecond)
		}
	}
}

// jobRange maps one job's cells into the sharded matrix.
type jobRange struct {
	id    string
	start int
	n     int
	specs []harness.Spec
}

// runClusterMode is `kardd -cluster N`: coordinate the job file's matrix
// across N spawned subprocess workers (plus any remote joiners).
func runClusterMode(f clusterFlags, logf func(string, ...any)) {
	if f.submit == "" {
		fatal(fmt.Errorf("kardd: -cluster requires -submit jobs.json"))
	}
	jobs, all, ranges, err := expandJobs(f)
	if err != nil {
		fatal(err)
	}
	logf("cluster: %d jobs, %d cells, %d local workers", jobs, len(all), f.workers)

	storeDir := f.storeDir
	if storeDir == "" {
		storeDir = filepath.Join(f.dir, "store")
	}
	store, err := harness.OpenCache(storeDir)
	if err != nil {
		fatal(err)
	}
	var tracer *trace.Tracer
	if f.traceOn {
		tracer = trace.NewTracer(1, "kardd-cluster", 0)
	}
	coord, err := cluster.New(cluster.Config{
		Dir:              f.dir,
		Store:            store,
		HeartbeatTimeout: f.hbTimeout,
		CellDeadline:     f.cellDeadline,
		MaxAttempts:      f.maxAttempts,
		CompactEvery:     f.compactEvery,
		Logf:             logf,
		Trace:            tracer,
	}, all)
	if err != nil {
		fatal(err)
	}

	addr := f.listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	// A supervised restart rebinds the address its SIGKILLed predecessor
	// held; give the kernel a moment to release it.
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		if attempt >= 50 {
			fatal(err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	mux := http.NewServeMux()
	mux.Handle("/cluster/", coord.Handler())
	mux.Handle("/metrics", obs.DefaultRegistry.Handler())
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if tracer == nil {
			http.Error(w, "tracing disabled (start kardd with -trace)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = tracer.WriteChrome(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	httpSrv := &http.Server{Handler: mux}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()
	defer httpSrv.Close()
	url := "http://" + ln.Addr().String()
	logf("cluster: coordinator listening on %s", url)

	// A restarted incarnation under -supervise spawns no workers: the
	// previous incarnation's workers are orphaned but alive, retrying
	// against the same address until the rejoin grace re-admits them.
	incarnation, _ := strconv.Atoi(os.Getenv("KARDD_INCARNATION"))
	var procs []*exec.Cmd
	if incarnation == 0 {
		procs = spawnWorkers(f, url, storeDir, logf)
	} else {
		logf("cluster: restarted incarnation %d: reusing the previous incarnation's workers", incarnation)
	}
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				_ = p.Process.Signal(syscall.SIGTERM)
			}
		}
		for _, p := range procs {
			_ = p.Wait()
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := coord.Wait(ctx); err != nil {
		logf("cluster: interrupted: %v (completed cells are journaled; rerun to resume)", err)
		_ = coord.Close()
		os.Exit(1)
	}
	results := coord.Results()
	st := coord.Stats()
	logf("cluster: all %d cells settled (%d failed, %d reassigned, %d store-served)",
		st.Cells, st.Failed, st.Reassigned, st.CacheServed)
	// Local workers see LeaseDone on their next poll and exit 0; reap
	// them before closing so none races Close into a 503.
	for _, p := range procs {
		_ = p.Wait()
	}
	procs = nil
	if incarnation > 0 {
		// The previous incarnation's workers are orphans, not our
		// children: wait for them to fetch LeaseDone and exit (they stop
		// heartbeating and go dead) before this process — and with it the
		// endpoint — disappears, else they burn their retry budgets
		// against a dead address and exit nonzero.
		reapDeadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(reapDeadline) {
			live := 0
			for _, w := range coord.Stats().Workers {
				if !w.Dead {
					live++
				}
			}
			if live == 0 {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	if err := coord.Close(); err != nil {
		logf("cluster: close: %v", err)
	}

	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			logf("cluster: cell %d (%s): %v", r.Index, r.Spec.Label(), r.Err)
		}
	}
	if f.verdicts != "" {
		if err := writeClusterVerdicts(f.verdicts, ranges, results); err != nil {
			fatal(err)
		}
		logf("wrote verdicts to %s", f.verdicts)
	}
	if failed > 0 {
		fatal(fmt.Errorf("kardd: %d cells failed", failed))
	}
}

// expandJobs loads the -submit file and expands every job to cells the
// same way service admission does, so IDs, cell order, and therefore
// verdict bytes match a single-process run of the same file.
func expandJobs(f clusterFlags) (jobs int, all []harness.Spec, ranges []jobRange, err error) {
	data, err := os.ReadFile(f.submit)
	if err != nil {
		return 0, nil, nil, err
	}
	var specs []service.JobSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return 0, nil, nil, fmt.Errorf("kardd: parsing %s: %w", f.submit, err)
	}
	defaults := service.ServerDefaults{CellTimeout: f.cellTimeout, MaxFrames: f.maxFrames, MaxRWKeys: f.maxRWKeys}
	seen := map[string]bool{}
	for i := range specs {
		if err := specs[i].Normalize(defaults); err != nil {
			return 0, nil, nil, err
		}
		if seen[specs[i].ID] {
			return 0, nil, nil, fmt.Errorf("kardd: duplicate job id %q in %s", specs[i].ID, f.submit)
		}
		seen[specs[i].ID] = true
		cells := specs[i].Cells()
		ranges = append(ranges, jobRange{id: specs[i].ID, start: len(all), n: len(cells), specs: cells})
		all = append(all, cells...)
	}
	return len(specs), all, ranges, nil
}

// spawnWorkers launches f.workers local subprocess workers of this same
// binary, passing the chaos flags through so `kardd -cluster -chaos-net`
// gives every local worker a seeded fault transport (distinct per-worker
// seeds so their schedules differ).
func spawnWorkers(f clusterFlags, url, storeDir string, logf func(string, ...any)) []*exec.Cmd {
	exe, err := os.Executable()
	if err != nil {
		fatal(fmt.Errorf("kardd: locating own binary for -worker spawn: %w", err))
	}
	n := f.workers
	procs := make([]*exec.Cmd, 0, n)
	for i := 0; i < n; i++ {
		args := []string{"-worker",
			"-coordinator", url,
			"-store", storeDir,
			"-worker-name", fmt.Sprintf("local-%d", i+1)}
		if f.chaosNet {
			args = append(args, "-chaos-net")
		}
		if f.chaosDisk {
			args = append(args, "-chaos-disk")
		}
		if f.traceOn {
			args = append(args, "-trace")
		}
		if f.chaosNet || f.chaosDisk {
			args = append(args, "-chaos-seed", strconv.FormatInt(f.chaosSeed+int64(i), 10))
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fatal(fmt.Errorf("kardd: spawning worker %d: %w", i+1, err))
		}
		logf("cluster: spawned local worker %d (pid %d)", i+1, cmd.Process.Pid)
		procs = append(procs, cmd)
	}
	return procs
}

// writeClusterVerdicts renders per-job canonical verdicts from the
// merged cells, sorted by job ID — the same bytes `kardd -verdicts`
// writes after a single-process run of the same job file.
func writeClusterVerdicts(path string, ranges []jobRange, results []harness.MatrixResult) error {
	verdicts := make([]*service.JobVerdict, 0, len(ranges))
	for _, jr := range ranges {
		v := &service.JobVerdict{JobID: jr.id}
		complete := true
		for k := 0; k < jr.n; k++ {
			r := results[jr.start+k]
			if r.Err != nil || r.Result == nil {
				complete = false
				break
			}
			v.Cells = append(v.Cells, service.NewCellVerdict(jr.specs[k], r.Result))
		}
		if complete {
			verdicts = append(verdicts, v)
		}
	}
	sort.Slice(verdicts, func(i, k int) bool { return verdicts[i].JobID < verdicts[k].JobID })
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, v := range verdicts {
		f.Write(v.Canonical())
		f.Write([]byte("\n"))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
