// Command kardtrace runs a workload with event tracing enabled, dumping
// thread, synchronization, allocation, and detector-reaction events for
// debugging the detector or a workload model.
//
// Usage:
//
//	kardtrace -w aget -n 200              # first 200 events under Kard
//	kardtrace -w pigz -d baseline -n 50
//
// The event tracer forces serial execution (sim.Tracer is SerialOnly):
// batched and parallel execution reorder per-thread work, which would
// interleave the printed event stream nondeterministically. Verdicts are
// identical across execution modes, so this costs fidelity nothing.
// For structured span traces of a whole campaign, use `kardbench -trace`
// instead.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"kard/internal/core"
	"kard/internal/hb"
	"kard/internal/lockset"
	"kard/internal/sim"
	"kard/internal/workload"
)

func main() {
	var (
		name    = flag.String("w", "", "workload to trace")
		det     = flag.String("d", "kard", "detector: kard, tsan, lockset, baseline")
		threads = flag.Int("threads", 4, "worker threads")
		scale   = flag.Float64("scale", 0.02, "critical-section entry scale in (0,1]")
		seed    = flag.Int64("seed", 1, "deterministic scheduler seed")
		limit   = flag.Int("n", 500, "maximum events to print (0 = unlimited)")
	)
	flag.Parse()
	if *name == "" {
		flag.Usage()
		os.Exit(2)
	}

	w, err := workload.New(*name)
	if err != nil {
		fatal(err)
	}
	var inner sim.Detector
	cfg := sim.Config{Seed: *seed}
	switch *det {
	case "kard":
		inner = core.New(core.Options{})
		cfg.UniquePageAllocator = true
	case "tsan":
		inner = hb.New(hb.Options{})
	case "lockset":
		inner = lockset.New()
	case "baseline":
		inner = nil
	default:
		fatal(fmt.Errorf("unknown detector %q", *det))
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	tracer := sim.NewTracer(inner, out, *limit)
	e := sim.New(cfg, tracer)
	w.Prepare(e)
	st, err := e.Run(func(m *sim.Thread) { w.Body(m, *threads, *scale) })
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(out, "\n%d race record(s); exec %.4fs simulated over %d threads\n",
		len(st.Races), st.ExecSeconds(), st.Threads)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kardtrace:", err)
	os.Exit(1)
}
