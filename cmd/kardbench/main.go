// Command kardbench regenerates the tables and figures of the Kard paper's
// evaluation (§7) from the simulated reproduction.
//
// Usage:
//
//	kardbench -all                    # everything (slow at -scale 1)
//	kardbench -all -jobs 8 -progress  # fan cells out across 8 workers
//	kardbench -all -cachedir .cache   # skip already-computed cells
//	kardbench -table 3 -scale 0.2     # Table 3 at reduced entry counts
//	kardbench -table 5                # memcached key sharing/recycling
//	kardbench -table 6                # real-world races, Kard vs TSan
//	kardbench -figure 5               # scalability at 8/16/32 threads
//	kardbench -sweep nginx            # §7.2 file-size sweep
//	kardbench -table ilu              # §3.1 ILU share over the corpus
//	kardbench -chaos                  # fault-injection soak: verdicts must hold
//	kardbench -table 6 -trace t.json  # export a Chrome/Perfetto trace of the campaign
//	kardbench -daemon                 # kardd service smoke: crash, recover, verify
//
// The -scale flag trades run time for fidelity of the absolute counters
// (entries, faults); overhead percentages are far less sensitive. The
// final numbers recorded in EXPERIMENTS.md were produced at -scale 1.
//
// Every simulation is deterministic, so -jobs only changes wall-clock
// time, never the output, and -cachedir results stay valid until the code
// changes (cache keys embed the VCS revision when the binary carries one).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"kard/internal/obs"
	"kard/internal/report"
	"kard/internal/trace"
)

// known enumerates the valid values of the selector flags; anything else
// is rejected with a usage message instead of silently doing nothing.
var known = map[string]map[string]bool{
	"table":  {"1": true, "2": true, "3": true, "4": true, "5": true, "6": true, "ilu": true},
	"figure": {"5": true},
	"sweep":  {"nginx": true},
}

func main() {
	var (
		table    = flag.String("table", "", "regenerate one table: 1, 2, 3, 4, 5, 6, or ilu")
		figure   = flag.String("figure", "", "regenerate one figure: 5")
		sweep    = flag.String("sweep", "", "run a parameter sweep: nginx")
		chaos    = flag.Bool("chaos", false, "run the fault-injection soak: race verdicts must not change under the default fault plan")
		daemon   = flag.Bool("daemon", false, "run the kardd service smoke: crash-recovered verdicts must match an uninterrupted run")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		threads  = flag.Int("threads", 4, "worker threads (the paper's testing scenario is 4)")
		scale    = flag.Float64("scale", 0.2, "critical-section entry scale in (0,1]")
		seed     = flag.Int64("seed", 1, "deterministic scheduler seed")
		jobs     = flag.Int("jobs", 0, "parallel simulation workers (0 = all CPUs); output is identical for every value")
		cachedir = flag.String("cachedir", "", "cache finished cells as JSON under this directory and reuse them")
		progress = flag.Bool("progress", false, "print per-cell progress (done/total, cost, ETA) to stderr")
		verbose  = flag.Bool("v", false, "alias for -progress")
		outPath  = flag.String("o", "", "write output to this file instead of stdout")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		metrics  = flag.String("metrics", "", "write a Prometheus-text snapshot of the run's metrics to this file at exit (- for stderr)")
		traceOut = flag.String("trace", "", "export a Chrome trace-event JSON of the campaign to this file (Perfetto/chrome://tracing); same seed = byte-identical export")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	validate("table", *table)
	validate("figure", *figure)
	validate("sweep", *sweep)

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	o := report.Options{Threads: *threads, Scale: *scale, Seed: *seed,
		Jobs: *jobs, CacheDir: *cachedir}
	if *progress || *verbose {
		o.Progress = os.Stderr
	}
	var tracer *trace.Tracer
	if *traceOut != "" {
		// The trace ID and every span ID derive from the scheduler seed,
		// and the per-cell tracks use virtual clocks, so two runs with the
		// same seed export byte-identical JSON. The cache is bypassed while
		// tracing (a cache hit would replace a cell's engine events with a
		// single instant).
		if *cachedir != "" {
			fmt.Fprintln(os.Stderr, "kardbench: -trace bypasses -cachedir (every cell must execute for a deterministic export)")
		}
		tracer = trace.NewTracer(*seed, "kardbench", 0)
		tracer.ProcessName(1, "kardbench-harness")
		o.Trace = tracer
	}

	start := time.Now()
	run := func(name string, f func() error) {
		fmt.Fprintf(out, "==== %s ====\n\n", name)
		if err := f(); err != nil {
			fatal(err)
		}
		fmt.Fprintln(out)
	}

	did := false
	want := func(kind, which string) bool {
		switch kind {
		case "table":
			return *all || *table == which
		case "figure":
			return *all || *figure == which
		case "sweep":
			return *all || *sweep == which
		}
		return false
	}

	if want("table", "1") {
		did = true
		run("Table 1 (ILU scope)", func() error { return report.Table1(out, o) })
	}
	if want("table", "2") {
		did = true
		run("Table 2 (approach comparison)", func() error { report.Table2(out, -1); return nil })
	}
	if want("table", "3") {
		did = true
		run("Table 3 (overheads)", func() error { _, err := report.Table3(out, o); return err })
	}
	if want("table", "4") {
		did = true
		run("Table 4 (FP/FN mitigations)", func() error { return report.Table4(out, o) })
	}
	if want("table", "5") {
		did = true
		run("Table 5 (memcached key events)", func() error { return report.Table5(out, o) })
	}
	if want("table", "6") {
		did = true
		run("Table 6 (real-world races)", func() error { return report.Table6(out, o) })
	}
	if want("table", "ilu") {
		did = true
		run("§3.1 ILU share", func() error { return report.ILUShare(out, o) })
	}
	if want("figure", "5") {
		did = true
		run("Figure 5 (scalability)", func() error { return report.Figure5(out, o) })
	}
	if want("sweep", "nginx") {
		did = true
		run("§7.2 NGINX file-size sweep", func() error { return report.NginxSweep(out, o) })
	}
	if *chaos {
		did = true
		run("Chaos (fault-injection soak)", func() error { return report.Chaos(out, o) })
	}
	if *daemon {
		did = true
		run("Daemon (kardd crash/recover smoke)", func() error { return report.Daemon(out, o) })
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
	// Wall clock goes to stderr: the table output must stay byte-identical
	// across -jobs values and cache states so reproductions diff cleanly.
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Second))

	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteChrome(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote trace to %s (trace id %016x, dropped %d)\n",
			*traceOut, tracer.TraceID(), tracer.Dropped())
	}

	// The metrics snapshot is diagnostic, never part of the table output,
	// so it goes to its own file (or stderr with -metrics -).
	if *metrics != "" {
		w := io.Writer(os.Stderr)
		if *metrics != "-" {
			f, err := os.Create(*metrics)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := obs.DefaultRegistry.WritePrometheus(w); err != nil {
			fatal(err)
		}
	}
}

// validate exits with a usage message when a selector flag carries an
// unknown value, instead of silently running nothing under it.
func validate(kind, value string) {
	if value == "" || known[kind][value] {
		return
	}
	valid := make([]string, 0, len(known[kind]))
	for v := range known[kind] {
		valid = append(valid, v)
	}
	sort.Strings(valid)
	fmt.Fprintf(os.Stderr, "kardbench: unknown -%s value %q (valid: %s)\n",
		kind, value, strings.Join(valid, ", "))
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kardbench:", err)
	os.Exit(1)
}
