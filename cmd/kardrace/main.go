// Command kardrace runs one application model under a chosen detector and
// prints the data races it reports, the way a developer would run the real
// Kard tool over a test workload.
//
// Usage:
//
//	kardrace -w memcached                 # Kard over the memcached model
//	kardrace -w aget -d tsan              # the happens-before comparator
//	kardrace -w pigz -d lockset           # the Eraser-style comparator
//	kardrace -list                        # available workloads
package main

import (
	"flag"
	"fmt"
	"os"

	"kard/internal/harness"
	"kard/internal/report"
	"kard/internal/workload"
)

func main() {
	var (
		name    = flag.String("w", "", "workload to run (see -list)")
		det     = flag.String("d", "kard", "detector: kard, tsan, lockset, baseline, alloc")
		threads = flag.Int("threads", 4, "worker threads")
		scale   = flag.Float64("scale", 0.2, "critical-section entry scale in (0,1]")
		seed    = flag.Int64("seed", 1, "deterministic scheduler seed")
		list    = flag.Bool("list", false, "list available workloads")
		catalog = flag.Bool("catalog", false, "run the race-pattern catalog under all detectors")
		stats   = flag.Bool("stats", false, "also print run statistics")
	)
	flag.Parse()

	if *catalog {
		if err := report.Catalog(os.Stdout, report.Options{Seed: *seed}); err != nil {
			fmt.Fprintln(os.Stderr, "kardrace:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, suite := range workload.Suites() {
			fmt.Printf("%s:\n", suite)
			for _, n := range workload.BySuite(suite) {
				w, _ := workload.New(n)
				s := w.Spec()
				fmt.Printf("  %-15s %d sharable objects, %d critical sections, %d entries\n",
					n, s.HeapObjects+s.GlobalObjects, s.TotalCS, s.CSEntries)
			}
		}
		return
	}
	if *name == "" {
		flag.Usage()
		os.Exit(2)
	}

	r, err := harness.Run(harness.Options{
		Workload: *name, Mode: harness.Mode(*det),
		Threads: *threads, Scale: *scale, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kardrace:", err)
		os.Exit(1)
	}

	races := r.Stats.Races
	if len(races) == 0 {
		fmt.Printf("%s: no data races reported by %s\n", *name, r.Stats.Detector)
	} else {
		fmt.Printf("%s: %d potential data race record(s) from %s (%d distinct objects)\n\n",
			*name, len(races), r.Stats.Detector, harness.DistinctRacyObjects(r))
		for i, race := range races {
			fmt.Printf("race #%d on %s\n", i+1, race.Object)
			fmt.Printf("  %s of %d byte(s) at offset %d\n", race.Kind, 8, race.Offset)
			fmt.Printf("  thread %d at %q in section %q\n", race.Thread, race.Site, race.Section)
			fmt.Printf("  conflicts with thread %d in section %q\n", race.OtherThread, race.OtherSection)
			fmt.Printf("  inconsistent lock usage: %v; virtual time %d\n\n", race.ILU, race.Time)
		}
	}
	if r.HasKard {
		c := r.Kard
		fmt.Printf("kard: %d faults (%d identification, %d migration, %d race), %d recycling, %d sharing,\n",
			c.Faults, c.IdentificationFaults, c.MigrationFaults, c.RaceFaults,
			c.KeyRecyclingEvents, c.KeySharingEvents)
		fmt.Printf("      %d read-only and %d read-write shared objects, %d spurious reports pruned\n",
			c.SharedRO, c.SharedRWEver, c.PrunedSpurious)
	}
	if *stats {
		s := r.Stats
		fmt.Printf("\nstats: exec %.4fs simulated, %d threads, peak RSS %.1f MiB,\n",
			s.ExecSeconds(), s.Threads, float64(s.PeakRSS)/(1<<20))
		fmt.Printf("       %d sections (%d max concurrent), %d entries, dTLB miss rate %.6f\n",
			s.TotalSections, s.MaxConcurrentSections, s.CSEntries, s.DTLBMissRate())
	}
}
