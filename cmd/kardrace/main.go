// Command kardrace runs one application model under a chosen detector and
// prints the data races it reports, the way a developer would run the real
// Kard tool over a test workload.
//
// Usage:
//
//	kardrace -w memcached                 # Kard over the memcached model
//	kardrace -w aget -d tsan              # the happens-before comparator
//	kardrace -w pigz -d lockset           # the Eraser-style comparator
//	kardrace -list                        # available workloads
package main

import (
	"flag"
	"fmt"
	"os"

	"kard/internal/harness"
	"kard/internal/report"
	"kard/internal/sim"
	"kard/internal/workload"
)

// explainRace renders a race's forensic provenance (DESIGN.md §13):
// who touched the object, under which locks, how it moved between
// protection domains, and what the threads synchronized on just before
// detection.
func explainRace(race sim.Race) {
	p := race.Provenance
	if p == nil {
		fmt.Println("  (no provenance recorded)")
		return
	}
	describe := func(role string, a sim.AccessDesc) {
		name := a.ThreadName
		if name == "" {
			name = fmt.Sprintf("thread %d", a.Thread)
		}
		kind := a.Kind
		if kind == "" {
			kind = "access"
		}
		section := a.Section
		if section == "" {
			section = "(no section)"
		}
		fmt.Printf("  %-6s %s by %s at %q in %s\n", role+":", kind, name, a.Site, section)
	}
	describe("first", p.First)
	describe("second", p.Second)
	if len(p.LocksHeld) > 0 {
		fmt.Printf("  locks held at detection: %v\n", p.LocksHeld)
	} else {
		fmt.Println("  locks held at detection: none")
	}
	fmt.Printf("  detected in reconciliation epoch %d, batch drain %d\n", p.Epoch, p.Drain)
	if len(p.DomainHistory) > 0 {
		fmt.Println("  protection-domain history (oldest first):")
		for _, d := range p.DomainHistory {
			if d.Key > 0 {
				fmt.Printf("    t=%-8d %s (pkey %d)\n", d.Time, d.Domain, d.Key)
			} else {
				fmt.Printf("    t=%-8d %s\n", d.Time, d.Domain)
			}
		}
	}
	if len(p.SyncEdges) > 0 {
		fmt.Println("  recent synchronization edges (oldest first):")
		for _, s := range p.SyncEdges {
			switch {
			case s.Label != "":
				fmt.Printf("    t=%-8d %s by thread %d (%s)\n", s.Time, s.Kind, s.Thread, s.Label)
			case s.Other >= 0:
				fmt.Printf("    t=%-8d %s by thread %d (peer %d)\n", s.Time, s.Kind, s.Thread, s.Other)
			default:
				fmt.Printf("    t=%-8d %s by thread %d\n", s.Time, s.Kind, s.Thread)
			}
		}
	}
}

func main() {
	var (
		name    = flag.String("w", "", "workload to run (see -list)")
		det     = flag.String("d", "kard", "detector: kard, tsan, lockset, baseline, alloc")
		threads = flag.Int("threads", 4, "worker threads")
		scale   = flag.Float64("scale", 0.2, "critical-section entry scale in (0,1]")
		seed    = flag.Int64("seed", 1, "deterministic scheduler seed")
		list    = flag.Bool("list", false, "list available workloads")
		catalog = flag.Bool("catalog", false, "run the race-pattern catalog under all detectors")
		stats   = flag.Bool("stats", false, "also print run statistics")
		explain = flag.Bool("explain", false, "print each race's forensic provenance: the access pair, locks held, the object's protection-domain history, and recent synchronization edges")
	)
	flag.Parse()

	if *catalog {
		if err := report.Catalog(os.Stdout, report.Options{Seed: *seed}); err != nil {
			fmt.Fprintln(os.Stderr, "kardrace:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, suite := range workload.Suites() {
			fmt.Printf("%s:\n", suite)
			for _, n := range workload.BySuite(suite) {
				w, _ := workload.New(n)
				s := w.Spec()
				fmt.Printf("  %-15s %d sharable objects, %d critical sections, %d entries\n",
					n, s.HeapObjects+s.GlobalObjects, s.TotalCS, s.CSEntries)
			}
		}
		return
	}
	if *name == "" {
		flag.Usage()
		os.Exit(2)
	}

	r, err := harness.Run(harness.Options{
		Workload: *name, Mode: harness.Mode(*det),
		Threads: *threads, Scale: *scale, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kardrace:", err)
		os.Exit(1)
	}

	races := r.Stats.Races
	if len(races) == 0 {
		fmt.Printf("%s: no data races reported by %s\n", *name, r.Stats.Detector)
	} else {
		fmt.Printf("%s: %d potential data race record(s) from %s (%d distinct objects)\n\n",
			*name, len(races), r.Stats.Detector, harness.DistinctRacyObjects(r))
		for i, race := range races {
			fmt.Printf("race #%d on %s\n", i+1, race.Object)
			fmt.Printf("  %s of %d byte(s) at offset %d\n", race.Kind, 8, race.Offset)
			fmt.Printf("  thread %d at %q in section %q\n", race.Thread, race.Site, race.Section)
			fmt.Printf("  conflicts with thread %d in section %q\n", race.OtherThread, race.OtherSection)
			fmt.Printf("  inconsistent lock usage: %v; virtual time %d\n", race.ILU, race.Time)
			if *explain {
				explainRace(race)
			}
			fmt.Println()
		}
	}
	if r.HasKard {
		c := r.Kard
		fmt.Printf("kard: %d faults (%d identification, %d migration, %d race), %d recycling, %d sharing,\n",
			c.Faults, c.IdentificationFaults, c.MigrationFaults, c.RaceFaults,
			c.KeyRecyclingEvents, c.KeySharingEvents)
		fmt.Printf("      %d read-only and %d read-write shared objects, %d spurious reports pruned\n",
			c.SharedRO, c.SharedRWEver, c.PrunedSpurious)
	}
	if *stats {
		s := r.Stats
		fmt.Printf("\nstats: exec %.4fs simulated, %d threads, peak RSS %.1f MiB,\n",
			s.ExecSeconds(), s.Threads, float64(s.PeakRSS)/(1<<20))
		fmt.Printf("       %d sections (%d max concurrent), %d entries, dTLB miss rate %.6f\n",
			s.TotalSections, s.MaxConcurrentSections, s.CSEntries, s.DTLBMissRate())
	}
}
