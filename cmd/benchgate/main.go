// Command benchgate runs the repository's hot-path benchmarks, writes the
// results as JSON, and optionally gates on a committed baseline: it exits
// nonzero when any benchmark's ns/op regresses beyond a threshold or its
// allocs/op rises at all (the zero-allocation fast path is an invariant,
// not a statistic).
//
// Usage:
//
//	benchgate -out BENCH_2026-08-06.json                 # measure and record
//	benchgate -baseline BENCH_baseline.json              # measure and gate
//	benchgate -baseline BENCH_baseline.json -threshold 20
//
// Each benchmark runs -count times and the median ns/op is kept — the
// same estimator benchstat uses, and much more stable than the mean or
// minimum on a shared CI machine where interference is bursty. A gate
// failure prints the offending benchmarks and the percentage deltas.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// gated enumerates the benchmarks the gate requires: the memory-layer hot
// paths and the engine's end-to-end access loops. A baseline benchmark
// missing from the current run fails the gate (a deleted benchmark can't
// prove anything). nsGate is off for scheduler-bound benchmarks whose
// timing is dominated by goroutine handoffs (too noisy for a tight
// threshold on a shared machine); their allocs/op — the invariant that
// actually protects the fast path — is deterministic and stays gated.
// maxNS, when nonzero, is an absolute ns/op ceiling enforced regardless
// of the baseline: it pins a performance contract (the batched access
// path must stay an order of magnitude under the scalar engine's ~800 ns
// park/resume cost) rather than a relative drift bound.
var gated = []struct {
	name   string
	nsGate bool
	maxNS  float64
}{
	{name: "TranslateHit", nsGate: true},
	{name: "TranslateMiss", nsGate: true},
	{name: "TLBEvict", nsGate: true},
	{name: "RadixWalk", nsGate: true},
	{name: "MmapAnon", nsGate: true},
	{name: "Protect", nsGate: true},
	{name: "AccessSteadyState", maxNS: 160},
	{name: "AccessSteadyStateMetrics", maxNS: 200},
	{name: "AccessSteadyStateTraced", maxNS: 200},
	{name: "AccessBatched", maxNS: 160},
	{name: "AccessBatchedParallel"},
	{name: "ReconcileSyncPoint"},
	{name: "Sweep"},
}

// packages holds the benchmark packages to run.
var packages = []string{"kard/internal/mem", "kard/internal/sim"}

// result is one benchmark's aggregated measurement.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

// file is the on-disk BENCH_*.json schema.
type file struct {
	Date       string            `json:"date"`
	GoVersion  string            `json:"go_version"`
	CPU        string            `json:"cpu,omitempty"`
	Benchtime  string            `json:"benchtime"`
	Count      int               `json:"count"`
	PadPercent float64           `json:"pad_percent,omitempty"`
	Notes      string            `json:"notes,omitempty"`
	Benchmarks map[string]result `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("out", "", "write results as JSON to this file")
		baseline  = flag.String("baseline", "", "gate against this BENCH_*.json; exit 1 on regression")
		threshold = flag.Float64("threshold", 15, "max allowed ns/op regression in percent")
		benchtime = flag.String("benchtime", "0.5s", "per-benchmark measurement time")
		count     = flag.Int("count", 3, "runs per benchmark (median ns/op is kept)")
		pad       = flag.Float64("pad", 0, "inflate recorded ns/op by this percent (baseline headroom for shared-machine noise)")
		notes     = flag.String("notes", "", "free-form note recorded in the JSON")
	)
	flag.Parse()
	if *out == "" && *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchgate: nothing to do; pass -out and/or -baseline")
		flag.Usage()
		os.Exit(2)
	}

	cur, cpu, err := run(*benchtime, *count)
	if err != nil {
		fatal(err)
	}
	for _, g := range gated {
		if _, ok := cur[g.name]; !ok {
			fatal(fmt.Errorf("benchmark %s did not run; the gate set in cmd/benchgate must match the *_bench_test.go files", g.name))
		}
	}

	if *out != "" {
		recorded := cur
		if *pad > 0 {
			// A baseline recorded at the machine's momentary speed makes
			// the gate fire on co-tenant load swings rather than code
			// changes; padding the ceiling keeps it sensitive to real
			// regressions (an accidental map or allocation on the hot
			// path costs 2-10x, far beyond any pad) without the flakes.
			recorded = make(map[string]result, len(cur))
			for name, r := range cur {
				r.NsPerOp *= 1 + *pad/100
				r.OpsPerSec = 1e9 / r.NsPerOp
				recorded[name] = r
			}
		}
		f := file{
			Date:       time.Now().UTC().Format("2006-01-02"),
			GoVersion:  runtime.Version(),
			CPU:        cpu,
			Benchtime:  *benchtime,
			Count:      *count,
			PadPercent: *pad,
			Notes:      *notes,
			Benchmarks: recorded,
		}
		buf, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %s\n", *out)
	}

	if *baseline != "" {
		base, err := load(*baseline)
		if err != nil {
			fatal(err)
		}
		if failures := gate(base.Benchmarks, cur, *threshold); len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL vs %s (threshold %.0f%%):\n", *baseline, *threshold)
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "  "+f)
			}
			os.Exit(1)
		}
		fmt.Printf("benchgate: ok, %d benchmarks within %.0f%% of %s\n", len(base.Benchmarks), *threshold, *baseline)
	}
}

// run executes the benchmark packages and returns per-benchmark minima
// plus the CPU string go test reports.
func run(benchtime string, count int) (map[string]result, string, error) {
	names := make([]string, len(gated))
	for i, g := range gated {
		names[i] = g.name
	}
	pattern := "^Benchmark(" + strings.Join(names, "|") + ")$"
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count)}
	args = append(args, packages...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBuf, err := cmd.Output()
	if err != nil {
		return nil, "", fmt.Errorf("go test -bench: %w", err)
	}
	samples := map[string][]result{}
	cpu := ""
	sc := bufio.NewScanner(bytes.NewReader(outBuf))
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = rest
			continue
		}
		if name, r, ok := parseLine(line); ok {
			samples[name] = append(samples[name], r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	// Median ns/op across the runs; allocs and bytes are deterministic
	// and identical, so any run's values serve.
	results := make(map[string]result, len(samples))
	for name, rs := range samples {
		sort.Slice(rs, func(i, j int) bool { return rs[i].NsPerOp < rs[j].NsPerOp })
		r := rs[len(rs)/2]
		if n := len(rs); n%2 == 0 {
			r.NsPerOp = (rs[n/2-1].NsPerOp + rs[n/2].NsPerOp) / 2
			r.OpsPerSec = 1e9 / r.NsPerOp
		}
		results[name] = r
	}
	return results, cpu, nil
}

// parseLine parses one `go test -bench -benchmem` result line, e.g.
//
//	BenchmarkTranslateHit  \t61526518\t  3.358 ns/op\t  0 B/op\t  0 allocs/op
//
// returning the bare name (Benchmark prefix and -cpu suffix stripped).
func parseLine(line string) (string, result, bool) {
	f := strings.Fields(line)
	if len(f) < 8 || !strings.HasPrefix(f[0], "Benchmark") ||
		f[3] != "ns/op" || f[5] != "B/op" || f[7] != "allocs/op" {
		return "", result{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		name = name[:i]
	}
	ns, err1 := strconv.ParseFloat(f[2], 64)
	bytes, err2 := strconv.ParseUint(f[4], 10, 64)
	allocs, err3 := strconv.ParseUint(f[6], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || ns <= 0 {
		return "", result{}, false
	}
	return name, result{NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs, OpsPerSec: 1e9 / ns}, true
}

// gate compares current results against the baseline and returns
// human-readable failure lines (empty = pass).
func gate(base, cur map[string]result, threshold float64) []string {
	var failures []string
	for _, g := range gated {
		if c, ok := cur[g.name]; ok && g.maxNS > 0 && c.NsPerOp > g.maxNS {
			failures = append(failures, fmt.Sprintf("%s: %.2f ns/op exceeds the absolute ceiling %.0f ns/op",
				g.name, c.NsPerOp, g.maxNS))
		}
		b, inBase := base[g.name]
		if !inBase {
			continue // baseline predates this benchmark; nothing to hold it to
		}
		c, inCur := cur[g.name]
		if !inCur {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but did not run", g.name))
			continue
		}
		if delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100; g.nsGate && delta > threshold {
			failures = append(failures, fmt.Sprintf("%s: %.2f ns/op vs baseline %.2f (+%.1f%% > %.0f%%)",
				g.name, c.NsPerOp, b.NsPerOp, delta, threshold))
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op vs baseline %d (allocation regressions are never allowed)",
				g.name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	return failures
}

func load(path string) (*file, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f file
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	return &f, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
