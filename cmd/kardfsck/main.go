// Command kardfsck is the offline storage verifier: it walks a kardd
// state directory — service journal, cluster assignment journal, result
// cache, shared artifact store — and validates every frame CRC, every
// snapshot linkage, and every cache entry checksum without modifying a
// byte. It answers the question an operator has after a disk incident,
// before restarting anything: "what will recovery salvage, and what is
// already lost?" (OPERATIONS.md §9, DESIGN.md §11.)
//
// Usage:
//
//	kardfsck -dir state            # verify everything under a state dir
//	kardfsck -dir state -json      # machine-readable report
//	kardfsck state/journal.wal     # verify specific journals only
//
// Exit status: 0 when every examined artifact is clean (a torn WAL tail
// is clean — it is the expected shape after any crash), 1 when recovery
// would quarantine corruption or a snapshot is damaged, 2 on usage or
// I/O errors. Read-only: safe against a live daemon's directory.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"kard/internal/harness"
	"kard/internal/service/journal"
)

// fsckReport is the -json output shape.
type fsckReport struct {
	Journals []journal.Report      `json:"journals,omitempty"`
	Caches   []harness.CacheReport `json:"caches,omitempty"`
	Clean    bool                  `json:"clean"`
}

func main() {
	var (
		dir      = flag.String("dir", "", "kardd state directory to verify (journal.wal, cluster.wal, cache/, store/)")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON instead of prose")
		quietOut = flag.Bool("q", false, "print only problems (and the final verdict)")
	)
	flag.Parse()

	var wals, cacheDirs []string
	if *dir != "" {
		for _, name := range []string{"journal.wal", "cluster.wal"} {
			if p := filepath.Join(*dir, name); exists(p) {
				wals = append(wals, p)
			}
		}
		for _, name := range []string{"cache", "store"} {
			if p := filepath.Join(*dir, name); exists(p) {
				cacheDirs = append(cacheDirs, p)
			}
		}
	}
	wals = append(wals, flag.Args()...)
	if len(wals) == 0 && len(cacheDirs) == 0 {
		fmt.Fprintln(os.Stderr, "kardfsck: nothing to verify (pass -dir or journal paths)")
		os.Exit(2)
	}

	rep := fsckReport{Clean: true}
	failed := false
	for _, w := range wals {
		r, err := journal.Verify(w)
		if err != nil {
			if errors.Is(err, journal.ErrNotJournal) {
				fmt.Fprintf(os.Stderr, "kardfsck: %s: not a kard journal\n", w)
			} else {
				fmt.Fprintf(os.Stderr, "kardfsck: %s: %v\n", w, err)
			}
			failed = true
			continue
		}
		rep.Journals = append(rep.Journals, r)
		if !r.Clean() {
			rep.Clean = false
		}
		if !*jsonOut && (!*quietOut || !r.Clean()) {
			printJournal(r)
		}
	}
	for _, d := range cacheDirs {
		r, err := harness.VerifyCache(d)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kardfsck: %s: %v\n", d, err)
			failed = true
			continue
		}
		rep.Caches = append(rep.Caches, r)
		if !r.Clean() {
			rep.Clean = false
		}
		if !*jsonOut && (!*quietOut || !r.Clean()) {
			printCache(r)
		}
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "kardfsck: %v\n", err)
			failed = true
		}
	case rep.Clean && !failed:
		fmt.Println("kardfsck: clean")
	default:
		fmt.Println("kardfsck: UNCLEAN (recovery will quarantine state; see above)")
	}
	if failed {
		os.Exit(2)
	}
	if !rep.Clean {
		os.Exit(1)
	}
}

// printJournal renders one journal's verdict in a line or two of prose.
func printJournal(r journal.Report) {
	state := "clean"
	if !r.Clean() {
		state = "UNCLEAN"
	}
	fmt.Printf("%s: %s: generation %d, %d wal records", r.Path, state, r.Generation, r.IntactRecords)
	if r.SnapshotLinked {
		switch {
		case r.SnapshotOK:
			fmt.Printf(", snapshot ok (%d records, %d B)", r.SnapshotRecords, r.SnapshotBytes)
		case r.SnapshotPresent:
			fmt.Printf(", snapshot CORRUPT (replay recomputes settled state from the WAL)")
		default:
			fmt.Printf(", snapshot MISSING (replay recomputes settled state from the WAL)")
		}
	}
	if r.TornBytes > 0 {
		fmt.Printf(", torn tail %d B (normal after a crash; replay truncates it)", r.TornBytes)
	}
	fmt.Println()
	if r.CorruptRegions > 0 {
		fmt.Printf("%s:   %d corrupt mid-file region(s), %d B, will be quarantined; %d record(s) salvageable beyond them\n",
			r.Path, r.CorruptRegions, r.CorruptBytes, r.SalvagedRecords)
	}
}

// printCache renders one artifact-store verdict.
func printCache(r harness.CacheReport) {
	state := "clean"
	if !r.Clean() {
		state = "UNCLEAN"
	}
	fmt.Printf("%s: %s: %d entries, %d valid, %d corrupt, %d already quarantined, %d temp leftovers\n",
		r.Dir, state, r.Entries, r.Valid, len(r.Corrupt), r.Quarantined, r.TempLeftovers)
	for _, name := range r.Corrupt {
		fmt.Printf("%s:   corrupt entry %s (a live read would quarantine and recompute it)\n", r.Dir, name)
	}
}

// exists reports whether a path is present (file or directory).
func exists(p string) bool {
	_, err := os.Stat(p)
	return err == nil
}
