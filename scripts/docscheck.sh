#!/usr/bin/env bash
# docscheck.sh — docs-link check: every `DESIGN.md §N` reference in the
# tree (Go sources and Markdown docs alike) must resolve to a `## N.`
# heading that actually exists in DESIGN.md. Keeps godoc pointers and
# runbook cross-references from rotting when sections are renumbered.
# `make docs-check` and CI run this.
set -euo pipefail
cd "$(dirname "$0")/.."

# Sections that exist: "## 9. Cluster architecture" -> 9
declare -A have
while read -r n; do
  have["$n"]=1
done < <(sed -n 's/^## \([0-9][0-9]*\)\..*/\1/p' DESIGN.md)
if [ "${#have[@]}" -eq 0 ]; then
  echo "FAIL: no '## N.' headings found in DESIGN.md" >&2
  exit 1
fi

fail=0
refs=0
# References: "DESIGN.md §7" / "DESIGN.md §7.2" (the sub-section digit
# resolves to its parent heading).
while IFS=: read -r file line ref; do
  n="$(printf '%s' "$ref" | sed 's/.*§\([0-9][0-9]*\).*/\1/')"
  refs=$((refs + 1))
  if [ -z "${have[$n]:-}" ]; then
    echo "FAIL: $file:$line references DESIGN.md §$n but DESIGN.md has no '## $n.' heading" >&2
    fail=1
  fi
done < <(grep -rno --include='*.go' --include='*.md' 'DESIGN\.md §[0-9][0-9]*\(\.[0-9]\)*' . \
         | grep -v '^\./DESIGN.md:')

if [ "$refs" -eq 0 ]; then
  echo "FAIL: found no DESIGN.md §N references at all (check the grep pattern)" >&2
  exit 1
fi
if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "OK: $refs DESIGN.md section references resolve (${#have[@]} sections)"
