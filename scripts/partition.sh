#!/usr/bin/env bash
# partition.sh — network-chaos + coordinator crash-restart smoke for the
# sharded cluster.
#
# Runs the same job set twice: once through single-process kardd (the
# reference), once through `kardd -cluster 2 -supervise -chaos-net` —
# every worker RPC passes through the seeded netfault transport
# (drops, delays, duplicates, lost responses, partition bursts), and the
# coordinator process is SIGKILLed mid-run and restarted by the
# supervisor over the same journal. The workers must ride out both the
# chaos and the restart on their retry budgets, be re-admitted under
# their old identities (rejoin grace), and the final verdicts must be
# byte-identical to the fault-free single-process run. See OPERATIONS.md
# ("Network incidents") and DESIGN.md §9.
#
# Environment: SCALE (default 0.05) trades fidelity for speed; SEED
# (default 1) picks the fault schedule — same seed, same schedule.
# `make partition-smoke` runs this in CI.
set -euo pipefail

SCALE="${SCALE:-0.05}"
SEED="${SEED:-1}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

cd "$(dirname "$0")/.."
go build -o "$WORK/kardd" ./cmd/kardd

# 20 cells: comfortably longer than the kill-window poll below, so the
# SIGKILL lands while work is genuinely in flight.
TOTAL=20
cat >"$WORK/jobs.json" <<EOF
[
  {"id": "pt-aget",  "workload": "aget",  "modes": ["kard", "baseline"], "seeds": [1, 2, 3, 4], "scale": $SCALE},
  {"id": "pt-pigz",  "workload": "pigz",  "modes": ["kard", "baseline"], "seeds": [1, 2, 3, 4], "scale": $SCALE},
  {"id": "pt-nginx", "workload": "nginx", "modes": ["kard"],             "seeds": [1, 2],       "scale": $SCALE}
]
EOF

echo "== reference run (single-process kardd, no faults)"
"$WORK/kardd" -dir "$WORK/ref" -submit "$WORK/jobs.json" \
  -exit-when-idle -verdicts "$WORK/ref.json"
[ -s "$WORK/ref.json" ] || { echo "FAIL: reference run produced no verdicts" >&2; exit 1; }

echo "== chaos run: supervised coordinator + 2 chaos-net workers, coordinator SIGKILLed mid-run"
"$WORK/kardd" -cluster 2 -supervise -dir "$WORK/cl" -submit "$WORK/jobs.json" \
  -listen 127.0.0.1:17717 -hb-timeout 2s -chaos-net -chaos-seed "$SEED" \
  -verdicts "$WORK/cluster.json" 2>"$WORK/cluster.log" &
super=$!

# Wait until the matrix is genuinely mid-run (some cells done, some not),
# then SIGKILL the coordinator *child* — the supervisor must restart it.
coord=""
for _ in $(seq 1 2000); do
  stats="$(curl -fsS http://127.0.0.1:17717/cluster/stats 2>/dev/null || true)"
  done_n="$(printf '%s' "$stats" | sed -n 's/.*"done":\([0-9]*\).*/\1/p')"
  if [ -n "$done_n" ] && [ "$done_n" -ge 1 ] && [ "$done_n" -lt "$TOTAL" ]; then
    coord="$(pgrep -P "$super" -f -- '-cluster' | head -n 1 || true)"
    [ -n "$coord" ] && break
  fi
  kill -0 "$super" 2>/dev/null || { echo "FAIL: supervisor exited early" >&2; cat "$WORK/cluster.log" >&2; exit 1; }
  sleep 0.02
done
if [ -z "$coord" ]; then
  echo "FAIL: never caught the coordinator mid-run to kill it" >&2
  cat "$WORK/cluster.log" >&2
  kill "$super" 2>/dev/null || true
  exit 1
fi
kill -9 "$coord"
echo "   SIGKILLed coordinator pid $coord at $done_n/$TOTAL cells done"

rc=0
wait "$super" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: supervised cluster run exited $rc, want 0" >&2
  cat "$WORK/cluster.log" >&2
  exit 1
fi

echo "== verdict diff (chaos + crash-restart vs fault-free single-process)"
if ! diff -u "$WORK/ref.json" "$WORK/cluster.json"; then
  echo "FAIL: chaos verdicts differ from the fault-free run" >&2
  cat "$WORK/cluster.log" >&2
  exit 1
fi
echo "   verdicts byte-identical under network chaos + coordinator SIGKILL/restart"

# Evidence the scenario actually happened: the supervisor restarted the
# coordinator, the restarted incarnation re-admitted journaled workers,
# and the chaos transports injected real faults.
grep -q 'restarting over the same journal' "$WORK/cluster.log" \
  || { echo "FAIL: supervisor never restarted the coordinator" >&2; cat "$WORK/cluster.log" >&2; exit 1; }
echo "   supervisor restarted the crashed coordinator"
grep -q 'rejoined after coordinator restart' "$WORK/cluster.log" \
  || { echo "FAIL: no worker was re-admitted under the rejoin grace" >&2; cat "$WORK/cluster.log" >&2; exit 1; }
echo "   workers re-admitted under their old identities"
if ! grep 'netfault stats' "$WORK/cluster.log" | grep -q 'injected=[1-9]'; then
  echo "FAIL: chaos transports injected zero faults — the smoke proved nothing" >&2
  cat "$WORK/cluster.log" >&2
  exit 1
fi
echo "   seeded fault schedule injected real faults:"
grep 'netfault stats' "$WORK/cluster.log" | sed 's/^/     /'

# Reap the orphaned workers before the trap removes their store.
for _ in $(seq 1 200); do
  pgrep -f "$WORK/kardd" >/dev/null 2>&1 || break
  sleep 0.05
done

echo "OK"
