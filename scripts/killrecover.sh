#!/usr/bin/env bash
# killrecover.sh [iterations] — end-to-end crash-safety smoke for kardd.
#
# Builds the daemon, runs a reference job set to completion, then
# SIGKILLs a second daemon mid-run over its own state directory
# (iterations times, resuming from the journal in between), restarts it
# cleanly, and requires the recovered verdicts to be byte-identical to
# the uninterrupted run. Finishes with the SIGTERM contract: a drained
# daemon must journal a drain record and exit 0.
#
# Environment: SCALE (default 0.05) trades fidelity for speed.
# `make soak` runs this with 3 kill iterations.
set -euo pipefail

ITER="${1:-1}"
SCALE="${SCALE:-0.05}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

cd "$(dirname "$0")/.."
go build -o "$WORK/kardd" ./cmd/kardd
go build -o "$WORK/kardfsck" ./cmd/kardfsck

cat >"$WORK/jobs.json" <<EOF
[
  {"id": "kr-aget",  "workload": "aget",  "modes": ["kard", "baseline"], "seeds": [1, 2], "scale": $SCALE},
  {"id": "kr-pigz",  "workload": "pigz",  "modes": ["kard"],             "seeds": [1, 2], "scale": $SCALE},
  {"id": "kr-nginx", "workload": "nginx", "modes": ["kard"],             "seeds": [1],    "scale": $SCALE}
]
EOF

# cells DIR — count journaled per-cell verdicts. The journal is
# binary-framed JSON with no newlines (hence grep -ao | wc -l, not -c,
# which would count the file as a single line). Missing file means 0.
cells() { { grep -ao '"t":"cell"' "$1/journal.wal" 2>/dev/null || true; } | wc -l; }

echo "== reference run (uninterrupted)"
"$WORK/kardd" -dir "$WORK/ref" -submit "$WORK/jobs.json" \
  -exit-when-idle -verdicts "$WORK/ref.json"
[ -s "$WORK/ref.json" ] || { echo "FAIL: reference run produced no verdicts" >&2; exit 1; }

echo "== crash pass: $ITER SIGKILL iteration(s)"
for i in $(seq 1 "$ITER"); do
  before="$(cells "$WORK/crash")"; before="${before:-0}"
  "$WORK/kardd" -dir "$WORK/crash" -submit "$WORK/jobs.json" &
  pid=$!
  # Wait until the journal has grown past what the previous incarnation
  # left, then pull the plug. If everything already finished, the poll
  # times out and the kill hits an idle daemon — also a valid crash.
  for _ in $(seq 1 100); do
    now="$(cells "$WORK/crash")"; now="${now:-0}"
    [ "$now" -gt "$before" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  echo "   iteration $i: SIGKILL at $(cells "$WORK/crash") journaled cells"
done

echo "== recovery run (journal replay + resume)"
"$WORK/kardd" -dir "$WORK/crash" -submit "$WORK/jobs.json" \
  -exit-when-idle -verdicts "$WORK/crash.json" -report

if ! diff -u "$WORK/ref.json" "$WORK/crash.json"; then
  echo "FAIL: recovered verdicts differ from the uninterrupted run" >&2
  exit 1
fi
echo "   verdicts byte-identical after $ITER crash(es)"

echo "== kardfsck over the recovered state directory"
"$WORK/kardfsck" -dir "$WORK/crash" \
  || { echo "FAIL: kardfsck reports the recovered state unclean" >&2; exit 1; }

echo "== SIGTERM drain"
"$WORK/kardd" -dir "$WORK/drain" -submit "$WORK/jobs.json" &
pid=$!
sleep 1
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: SIGTERM drain exited $rc, want 0" >&2
  exit 1
fi
grep -aq '"t":"drain"' "$WORK/drain/journal.wal" \
  || { echo "FAIL: no drain record journaled" >&2; exit 1; }
echo "   drained cleanly, exit 0"

echo "OK"
