#!/usr/bin/env bash
# clusterkill.sh — end-to-end cluster kill/reassign smoke for kardd.
#
# Runs the same job set twice: once through single-process kardd (the
# reference), once through `kardd -cluster 2` with one of the subprocess
# workers SIGKILLed mid-cell. The coordinator must declare the worker
# dead, reassign its cell, and finish; the cluster verdicts must be
# byte-identical to the single-process run. See OPERATIONS.md ("Kill and
# recover a worker") and DESIGN.md §9.
#
# Environment: SCALE (default 0.05) trades fidelity for speed.
# `make cluster-smoke` runs this in CI.
set -euo pipefail

SCALE="${SCALE:-0.05}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

cd "$(dirname "$0")/.."
go build -o "$WORK/kardd" ./cmd/kardd
go build -o "$WORK/kardfsck" ./cmd/kardfsck

# Enough cells (~20) that the run is comfortably longer than the poll
# loop below — the kill must land while work is still in flight.
cat >"$WORK/jobs.json" <<EOF
[
  {"id": "ck-aget",  "workload": "aget",  "modes": ["kard", "baseline"], "seeds": [1, 2, 3, 4], "scale": $SCALE},
  {"id": "ck-pigz",  "workload": "pigz",  "modes": ["kard", "baseline"], "seeds": [1, 2, 3, 4], "scale": $SCALE},
  {"id": "ck-nginx", "workload": "nginx", "modes": ["kard"],             "seeds": [1, 2],       "scale": $SCALE}
]
EOF

echo "== reference run (single-process kardd)"
"$WORK/kardd" -dir "$WORK/ref" -submit "$WORK/jobs.json" \
  -exit-when-idle -verdicts "$WORK/ref.json"
[ -s "$WORK/ref.json" ] || { echo "FAIL: reference run produced no verdicts" >&2; exit 1; }

echo "== cluster run: coordinator + 2 subprocess workers, one SIGKILLed"
# A short heartbeat timeout keeps the death declaration (and therefore
# the whole smoke) fast; production keeps the 5s default.
"$WORK/kardd" -cluster 2 -dir "$WORK/cl" -submit "$WORK/jobs.json" \
  -listen 127.0.0.1:17707 -hb-timeout 1s -verdicts "$WORK/cluster.json" &
coord=$!

# Wait for a worker to actually hold an assignment, then SIGKILL it.
# /cluster/stats is the same endpoint operators poll during an incident.
victim=""
for _ in $(seq 1 500); do
  stats="$(curl -fsS http://127.0.0.1:17707/cluster/stats 2>/dev/null || true)"
  if [ -n "$stats" ] && echo "$stats" | grep -q '"assigned":[1-9]'; then
    # The spawned workers are children of the coordinator named
    # "kardd -worker ..."; kill the first one still running.
    victim="$(pgrep -P "$coord" -f -- '-worker' | head -n 1 || true)"
    [ -n "$victim" ] && break
  fi
  kill -0 "$coord" 2>/dev/null || { echo "FAIL: coordinator exited early" >&2; exit 1; }
  sleep 0.02
done
if [ -z "$victim" ]; then
  echo "FAIL: no subprocess worker held an assignment to kill" >&2
  kill "$coord" 2>/dev/null || true
  exit 1
fi
kill -9 "$victim"
echo "   SIGKILLed worker pid $victim mid-run"

rc=0
wait "$coord" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: cluster run exited $rc, want 0" >&2
  exit 1
fi

echo "== verdict diff (cluster vs single-process)"
if ! diff -u "$WORK/ref.json" "$WORK/cluster.json"; then
  echo "FAIL: cluster verdicts differ from the single-process run" >&2
  exit 1
fi
echo "   verdicts byte-identical after worker SIGKILL + reassignment"

# The assignment journal must have recorded the death and the cell must
# have settled anyway (framed JSON, no newlines — grep -a, not line ops).
grep -aq '"t":"dead"' "$WORK/cl/cluster.wal" \
  || { echo "FAIL: no worker-dead record in the assignment journal" >&2; exit 1; }
echo "   worker-dead record journaled"

echo "== kardfsck over the assignment journal + shared store"
"$WORK/kardfsck" -dir "$WORK/cl" \
  || { echo "FAIL: kardfsck reports the cluster state unclean" >&2; exit 1; }

echo "OK"
