#!/usr/bin/env bash
# tracesmoke.sh — end-to-end smoke for the structured tracer (DESIGN.md §13).
#
# Three properties, against the real binaries:
#
#  1. Determinism: two `kardbench -trace` runs of the same campaign with
#     the same seed must export byte-identical Chrome trace JSON.
#  2. Validity: the export must pass `metricscheck -trace` — well-formed
#     JSON, every 'E' closes a matching 'B' on its (pid, tid) row,
#     timestamps monotonic per row.
#  3. The live daemon: `kardd -trace -listen` must serve a valid export
#     at /debug/trace while jobs run, with the kard_trace_* counter
#     families present and monotonic on /metrics, and every job's races
#     must carry a forensic record at /jobs/<id>/races/<n>/trace.
#
# Environment: SCALE (default 0.05) trades fidelity for speed, ADDR
# overrides the daemon listen address. `make trace-smoke` runs this.
set -euo pipefail

SCALE="${SCALE:-0.05}"
ADDR="${ADDR:-127.0.0.1:7719}"
WORK="$(mktemp -d)"
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$WORK"' EXIT

cd "$(dirname "$0")/.."
go build -o "$WORK/kardbench" ./cmd/kardbench
go build -o "$WORK/kardd" ./cmd/kardd
go build -o "$WORK/metricscheck" ./cmd/metricscheck

echo "== 1. same-seed campaign exports are byte-identical"
"$WORK/kardbench" -table 6 -scale "$SCALE" -jobs 4 -trace "$WORK/t1.json" >/dev/null
"$WORK/kardbench" -table 6 -scale "$SCALE" -jobs 4 -trace "$WORK/t2.json" >/dev/null
if ! cmp -s "$WORK/t1.json" "$WORK/t2.json"; then
  echo "FAIL: same-seed trace exports differ" >&2
  exit 1
fi
echo "   identical ($(wc -c <"$WORK/t1.json") bytes)"

echo "== 2. the export validates"
"$WORK/metricscheck" -trace "$WORK/t1.json"

echo "== 3. live daemon: /debug/trace, kard_trace_* counters, race provenance"
cat >"$WORK/jobs.json" <<EOF
[
  {"id": "ts-memcached", "workload": "memcached", "modes": ["kard"], "seeds": [1], "scale": $SCALE},
  {"id": "ts-aget",      "workload": "aget",      "modes": ["kard"], "seeds": [1], "scale": $SCALE}
]
EOF
"$WORK/kardd" -trace -dir "$WORK/state" -submit "$WORK/jobs.json" -listen "$ADDR" &
pid=$!

"$WORK/metricscheck" -url "http://$ADDR/metrics" -interval 500ms -wait 15s \
  -trace "http://$ADDR/debug/trace"

# Wait for the jobs to settle, then fetch one race's forensic record.
for _ in $(seq 1 100); do
  state="$(curl -fsS "http://$ADDR/jobs/ts-memcached" | grep -o '"state": *"[a-z]*"' | head -1)"
  case "$state" in *done*|*failed*) break ;; esac
  sleep 0.2
done
rt="$(curl -fsS "http://$ADDR/jobs/ts-memcached/races/0/trace")"
for field in '"jobId"' '"race"' '"provenance"' '"SyncEdges"'; do
  if ! grep -q "$field" <<<"$rt"; then
    echo "FAIL: race forensic record lacks $field:" >&2
    echo "$rt" >&2
    exit 1
  fi
done
echo "   race forensic record served with provenance"

kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: SIGTERM drain exited $rc, want 0" >&2
  exit 1
fi
echo "OK"
