#!/usr/bin/env bash
# diskfault.sh — end-to-end storage-fault smoke for kardd (DESIGN.md §11,
# OPERATIONS.md §9).
#
# Builds kardd and kardfsck, runs a reference job set fault-free, then
# runs the same jobs over a state directory whose every journal and cache
# I/O passes the seeded disk-fault shim (-chaos-disk): short writes,
# ENOSPC, fsync EIO, read bit flips, lost renames — with aggressive WAL
# compaction so the snapshot path is exercised too. The first incarnation
# is additionally SIGKILLed mid-run. Incarnations that hit an injected
# fsync failure fail-stop (exit 3, the poisoned-journal contract) and are
# restarted over the same directory with the next seed until one drains
# cleanly. The smoke then requires:
#
#   1. verdicts byte-identical to the fault-free run,
#   2. kardfsck to report the surviving state directory clean (exit 0),
#   3. evidence that faults were actually injected.
#
# Environment: SCALE (default 0.05) trades fidelity for speed.
set -euo pipefail

SCALE="${SCALE:-0.05}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

cd "$(dirname "$0")/.."
go build -o "$WORK/kardd" ./cmd/kardd
go build -o "$WORK/kardfsck" ./cmd/kardfsck

cat >"$WORK/jobs.json" <<EOF
[
  {"id": "df-aget",  "workload": "aget",  "modes": ["kard", "baseline"], "seeds": [1, 2], "scale": $SCALE},
  {"id": "df-pigz",  "workload": "pigz",  "modes": ["kard"],             "seeds": [1, 2], "scale": $SCALE},
  {"id": "df-nginx", "workload": "nginx", "modes": ["kard"],             "seeds": [1],    "scale": $SCALE}
]
EOF

cells() { { grep -ao '"t":"cell"' "$1/journal.wal" 2>/dev/null || true; } | wc -l; }

echo "== reference run (fault-free)"
"$WORK/kardd" -dir "$WORK/ref" -submit "$WORK/jobs.json" \
  -exit-when-idle -verdicts "$WORK/ref.json" 2>"$WORK/ref.log"
[ -s "$WORK/ref.json" ] || { echo "FAIL: reference run produced no verdicts" >&2; exit 1; }

echo "== faulty pass 1: chaos-disk + SIGKILL mid-run"
"$WORK/kardd" -dir "$WORK/faulty" -submit "$WORK/jobs.json" \
  -chaos-disk -chaos-seed 7 -compact-every 3 2>>"$WORK/faulty.log" &
pid=$!
for _ in $(seq 1 100); do
  [ "$(cells "$WORK/faulty")" -gt 0 ] && break
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
echo "   SIGKILL at $(cells "$WORK/faulty") journaled cells"

echo "== faulty recovery: restart under chaos-disk until a clean drain"
seed=8
for attempt in $(seq 1 12); do
  rc=0
  "$WORK/kardd" -dir "$WORK/faulty" -submit "$WORK/jobs.json" \
    -chaos-disk -chaos-seed "$seed" -compact-every 3 \
    -exit-when-idle -verdicts "$WORK/faulty.json" 2>>"$WORK/faulty.log" || rc=$?
  if [ "$rc" -eq 0 ]; then
    echo "   clean drain on attempt $attempt (seed $seed)"
    break
  fi
  # Exit 3 is the poisoned-journal fail-stop — the designed response to
  # an injected fsync EIO. Anything else is a real bug.
  if [ "$rc" -ne 3 ]; then
    echo "FAIL: kardd exited $rc under chaos-disk (want 0 or fail-stop 3)" >&2
    tail -20 "$WORK/faulty.log" >&2
    exit 1
  fi
  echo "   attempt $attempt (seed $seed): fail-stop on injected fsync error; restarting"
  seed=$((seed + 1))
  rc=1
done
if [ "${rc:-1}" -ne 0 ]; then
  echo "FAIL: no clean drain within 12 chaos-disk incarnations" >&2
  exit 1
fi

echo "== verdict equivalence"
if ! diff -u "$WORK/ref.json" "$WORK/faulty.json"; then
  echo "FAIL: verdicts under disk faults differ from the fault-free run" >&2
  exit 1
fi
echo "   verdicts byte-identical to the fault-free run"

echo "== kardfsck over the surviving state directory"
"$WORK/kardfsck" -dir "$WORK/faulty" \
  || { echo "FAIL: kardfsck reports the recovered state unclean" >&2; exit 1; }

echo "== fault evidence"
grep -a "diskfault stats: injected=" "$WORK/faulty.log" | tail -1
if ! grep -aq "diskfault stats: injected=[1-9]" "$WORK/faulty.log"; then
  echo "FAIL: no disk faults were injected; the smoke exercised nothing" >&2
  exit 1
fi

echo "OK"
