#!/usr/bin/env bash
# metricssmoke.sh — observability smoke for kardd's /metrics endpoint.
#
# Builds the daemon and the metricscheck validator, starts kardd with a
# small job set and the HTTP API listening, scrapes /metrics twice while
# the jobs run, and requires: both scrapes parse as Prometheus text, no
# family is declared twice, and every counter is monotonic between the
# scrapes. Finishes with a SIGTERM drain, which must exit 0.
#
# Environment: SCALE (default 0.05) trades fidelity for speed, ADDR
# overrides the listen address. `make metrics-smoke` runs this.
set -euo pipefail

SCALE="${SCALE:-0.05}"
ADDR="${ADDR:-127.0.0.1:7717}"
WORK="$(mktemp -d)"
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$WORK"' EXIT

cd "$(dirname "$0")/.."
go build -o "$WORK/kardd" ./cmd/kardd
go build -o "$WORK/metricscheck" ./cmd/metricscheck

cat >"$WORK/jobs.json" <<EOF
[
  {"id": "ms-aget", "workload": "aget", "modes": ["kard", "baseline"], "seeds": [1, 2], "scale": $SCALE},
  {"id": "ms-pigz", "workload": "pigz", "modes": ["kard"],             "seeds": [1, 2], "scale": $SCALE}
]
EOF

echo "== start kardd on $ADDR"
"$WORK/kardd" -dir "$WORK/state" -submit "$WORK/jobs.json" -listen "$ADDR" &
pid=$!

echo "== scrape /metrics twice and validate"
"$WORK/metricscheck" -url "http://$ADDR/metrics" -interval 500ms -wait 15s

echo "== SIGTERM drain"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: SIGTERM drain exited $rc, want 0" >&2
  exit 1
fi
echo "OK"
