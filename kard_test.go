package kard

import (
	"testing"
)

// TestSystemQuickstart is the README example: two threads touch the same
// object under different locks; Kard reports the race.
func TestSystemQuickstart(t *testing.T) {
	sys := NewSystem(Config{Detector: DetectorKard, Seed: 1})
	la, lb := sys.NewMutex("la"), sys.NewMutex("lb")
	barrier := sys.NewBarrier(2)
	rep, err := sys.Run(func(main *Thread) {
		counter := main.Malloc(8, "counter")
		t1 := main.Go("t1", func(w *Thread) {
			w.Lock(la, "increment")
			w.Write(counter, 0, 8, "counter++")
			w.Barrier(barrier)
			w.Compute(100000)
			w.Unlock(la)
		})
		t2 := main.Go("t2", func(w *Thread) {
			w.Barrier(barrier)
			w.Lock(lb, "report")
			w.Read(counter, 0, 8, "print(counter)")
			w.Unlock(lb)
		})
		main.Join(t1)
		main.Join(t2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RacyObjects() != 1 {
		t.Fatalf("races = %d, want 1: %+v", rep.RacyObjects(), rep.Races)
	}
	if rep.Kard == nil || rep.Kard.RaceFaults == 0 {
		t.Error("Kard counters missing")
	}
}

func TestSystemDetectorKinds(t *testing.T) {
	for _, kind := range []DetectorKind{DetectorNone, DetectorAllocOnly, DetectorKard, DetectorTSan, DetectorLockset} {
		sys := NewSystem(Config{Detector: kind})
		rep, err := sys.Run(func(m *Thread) {
			o := m.Malloc(64, "x")
			m.Write(o, 0, 8, "w")
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if rep.Stats.ExecTime == 0 {
			t.Errorf("%s: zero exec time", kind)
		}
		if (kind == DetectorKard) != (rep.Kard != nil) {
			t.Errorf("%s: kard counters presence wrong", kind)
		}
	}
}

func TestRunWorkloadFacade(t *testing.T) {
	rep, err := RunWorkload("aget", WorkloadConfig{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RacyObjects() != 1 {
		t.Errorf("aget races = %d, want 1", rep.RacyObjects())
	}
	if _, err := RunWorkload("nope", WorkloadConfig{}); err == nil {
		t.Error("unknown workload should fail")
	}
	if len(Workloads()) < 19 {
		t.Errorf("workloads = %d", len(Workloads()))
	}
}

func TestKardOptionsAblation(t *testing.T) {
	run := func(opts KardOptions) int {
		sys := NewSystem(Config{Detector: DetectorKard, Seed: 1, Kard: opts})
		la, lb := sys.NewMutex("la"), sys.NewMutex("lb")
		b := sys.NewBarrier(2)
		rep, err := sys.Run(func(m *Thread) {
			o := m.Malloc(256, "buf")
			t1 := m.Go("t1", func(w *Thread) {
				w.Lock(la, "sa")
				w.Write(o, 0, 8, "w1")
				w.Barrier(b)
				w.Compute(100000)
				w.Write(o, 0, 8, "w1b")
				w.Unlock(la)
			})
			t2 := m.Go("t2", func(w *Thread) {
				w.Barrier(b)
				w.Lock(lb, "sb")
				w.Write(o, 128, 8, "w2") // different offset
				w.Compute(200000)
				w.Unlock(lb)
			})
			m.Join(t1)
			m.Join(t2)
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.RacyObjects()
	}
	if n := run(KardOptions{}); n != 0 {
		t.Errorf("interleaving should prune the different-offset report, got %d", n)
	}
	if n := run(KardOptions{DisableInterleaving: true}); n != 1 {
		t.Errorf("without interleaving the report should remain, got %d", n)
	}
}

func TestDeterminismThroughFacade(t *testing.T) {
	r1, err := RunWorkload("pigz", WorkloadConfig{Scale: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunWorkload("pigz", WorkloadConfig{Scale: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.ExecTime != r2.Stats.ExecTime || len(r1.Races) != len(r2.Races) {
		t.Error("same seed diverged")
	}
}
