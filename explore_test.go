package kard

import (
	"testing"
)

// TestExploreFindsScheduleSensitiveRace: a race that manifests only when
// the reader lands inside the writer's critical section — some seeds miss
// it; the exploration merges across seeds.
func TestExploreFindsScheduleSensitiveRace(t *testing.T) {
	rep, err := Explore(Config{Detector: DetectorKard}, []int64{0, 1, 2, 3, 4, 5, 6, 7},
		func(sys *System) func(*Thread) {
			la, lb := sys.NewMutex("la"), sys.NewMutex("lb")
			return func(main *Thread) {
				o := main.Malloc(64, "shared")
				w1 := main.Go("w1", func(w *Thread) {
					for i := 0; i < 8; i++ {
						w.Lock(la, "writer")
						w.Write(o, 0, 8, "w")
						w.Compute(4000)
						w.Unlock(la)
						w.Compute(9000)
					}
				})
				w2 := main.Go("w2", func(w *Thread) {
					for i := 0; i < 8; i++ {
						w.Lock(lb, "reader")
						w.Read(o, 0, 8, "r")
						w.Unlock(lb)
						w.Compute(11000)
					}
				})
				main.Join(w1)
				main.Join(w2)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(rep.Findings), rep.Findings)
	}
	f := rep.Findings[0]
	if f.Object != "shared" {
		t.Errorf("object = %q", f.Object)
	}
	if f.Manifestations == 0 || f.Manifestations > rep.Seeds {
		t.Errorf("manifestations = %d of %d", f.Manifestations, rep.Seeds)
	}
	if len(f.Sections) == 0 {
		t.Error("no section pairs recorded")
	}
}

// TestExploreCleanProgram: exploration of a consistently locked program
// finds nothing under any seed.
func TestExploreCleanProgram(t *testing.T) {
	rep, err := Explore(Config{Detector: DetectorKard}, nil, func(sys *System) func(*Thread) {
		mu := sys.NewMutex("m")
		return func(main *Thread) {
			o := main.Malloc(64, "clean")
			w1 := main.Go("w1", func(w *Thread) {
				for i := 0; i < 5; i++ {
					w.Lock(mu, "cs")
					w.Write(o, 0, 8, "w")
					w.Unlock(mu)
				}
			})
			main.Join(w1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("findings on a clean program: %+v", rep.Findings)
	}
	if rep.Seeds != 8 {
		t.Errorf("default seeds = %d, want 8", rep.Seeds)
	}
}

// TestSystemRWMutexAndCond: the reader-writer lock and condition variable
// are reachable through the public API and interact with detection.
func TestSystemRWMutexAndCond(t *testing.T) {
	sys := NewSystem(Config{Detector: DetectorKard, Seed: 1})
	rw := sys.NewRWMutex("table")
	mu := sys.NewMutex("q")
	cond := sys.NewCond(mu, "ready")
	rep, err := sys.Run(func(main *Thread) {
		table := main.Malloc(64, "table")
		main.WLock(rw, "init")
		main.Write(table, 0, 8, "init")
		main.WUnlock(rw)

		done := false
		w := main.Go("w", func(w *Thread) {
			w.RLock(rw, "lookup")
			w.Read(table, 0, 8, "read")
			w.RUnlock(rw)
			w.Lock(mu, "signal")
			done = true
			w.Signal(cond)
			w.Unlock(mu)
		})
		main.Lock(mu, "wait")
		for !done {
			main.Wait(cond)
		}
		main.Unlock(mu)
		main.Join(w)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RacyObjects() != 0 {
		t.Errorf("clean rwlock/cond program reported races: %+v", rep.Races)
	}
}

// TestSoftwareFallbackThroughFacade exercises the §8 option end to end.
func TestSoftwareFallbackThroughFacade(t *testing.T) {
	rep, err := RunWorkload("memcached", WorkloadConfig{
		Scale: 0.05, Seed: 1,
		Kard: KardOptions{SoftwareFallback: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kard.KeySharingEvents != 0 {
		t.Errorf("sharing events = %d with software fallback, want 0", rep.Kard.KeySharingEvents)
	}
	if rep.RacyObjects() != 3 {
		t.Errorf("memcached races = %d under fallback, want 3", rep.RacyObjects())
	}
}
